//! Gold single-source shortest paths (paper Figure 14).
//!
//! Two independent implementations — Dijkstra with a binary heap and
//! Bellman-Ford — cross-check each other in tests. The accelerator model's
//! iterative relaxation (§4.2) is exactly Bellman-Ford in disguise, so
//! agreement between all three is strong evidence of correctness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::VertexId;

/// The result of an SSSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsspResult {
    /// Shortest distance from the source, `None` for unreachable vertices.
    pub distances: Vec<Option<f64>>,
}

impl SsspResult {
    /// Number of reachable vertices (including the source).
    #[must_use]
    pub fn reached(&self) -> usize {
        self.distances.iter().filter(|d| d.is_some()).count()
    }
}

/// Dijkstra's algorithm from `source`.
///
/// # Examples
///
/// ```
/// use graphr_graph::generators::structured::path;
/// use graphr_graph::algorithms::sssp::dijkstra;
///
/// let r = dijkstra(&path(3).to_csr(), 0);
/// assert_eq!(r.distances, vec![Some(0.0), Some(1.0), Some(2.0)]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range or any traversed edge weight is
/// negative (ReRAM conductances cannot encode negative distances and the
/// paper's SSSP assumes non-negative weights).
#[must_use]
pub fn dijkstra(csr: &Csr, source: VertexId) -> SsspResult {
    assert!(
        (source as usize) < csr.num_vertices(),
        "source {source} out of range for {} vertices",
        csr.num_vertices()
    );
    let mut dist: Vec<Option<f64>> = vec![None; csr.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = Some(0.0);
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if dist[u as usize].is_some_and(|known| known < d) {
            continue; // stale heap entry
        }
        for (v, w) in csr.neighbors(u) {
            assert!(w >= 0.0, "negative weight on edge ({u}, {v})");
            let candidate = d + f64::from(w);
            if dist[v as usize].is_none_or(|known| candidate < known) {
                dist[v as usize] = Some(candidate);
                heap.push(Reverse((OrdF64(candidate), v)));
            }
        }
    }
    SsspResult { distances: dist }
}

/// Bellman-Ford from `source`: iterative relaxation until fixpoint, the
/// same computation the GraphR add-op pattern performs in crossbars.
///
/// # Panics
///
/// Panics if `source` is out of range or any edge weight is negative.
#[must_use]
pub fn bellman_ford(csr: &Csr, source: VertexId) -> SsspResult {
    assert!(
        (source as usize) < csr.num_vertices(),
        "source {source} out of range for {} vertices",
        csr.num_vertices()
    );
    let n = csr.num_vertices();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    dist[source as usize] = Some(0.0);
    // Non-negative weights guarantee convergence within n-1 rounds.
    for _round in 0..n {
        let mut changed = false;
        for (u, v, w) in csr.edge_triples() {
            assert!(w >= 0.0, "negative weight on edge ({u}, {v})");
            if let Some(du) = dist[u as usize] {
                let candidate = du + f64::from(w);
                if dist[v as usize].is_none_or(|known| candidate < known) {
                    dist[v as usize] = Some(candidate);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    SsspResult { distances: dist }
}

/// Total-ordered f64 wrapper for the heap (weights are checked non-NaN at
/// graph construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::{Edge, EdgeList};
    use crate::generators::rmat::Rmat;
    use crate::generators::structured::grid;
    use proptest::prelude::*;

    #[test]
    fn matches_figure_16_example() {
        // The 8-vertex subgraph of paper Figure 16(c1): sources i0..i3
        // (ids 0..4) with initial distances [4,3,1,2] from some earlier
        // computation, dests j0..j3 (ids 4..8). Edges: i0→j1 (1), i0→j2 (5),
        // i1→j2 (3), i1→j3 (1), i3→j2 (1). We model the "initial distance"
        // by a virtual source 8 with edges of those weights.
        let mut g = EdgeList::new(9);
        for (src, dst, w) in [
            (0u32, 5u32, 1.0f32),
            (0, 6, 5.0),
            (1, 6, 3.0),
            (1, 7, 1.0),
            (3, 6, 1.0),
        ] {
            g.add_edge(Edge::new(src, dst, w)).unwrap();
        }
        for (i, w) in [(0u32, 4.0f32), (1, 3.0), (2, 1.0), (3, 2.0)] {
            g.add_edge(Edge::new(8, i, w)).unwrap();
        }
        // Initial dist(v) for j0..j3 were [7,6,M,M]; model j0's 7 and j1's 6
        // via direct virtual edges.
        g.add_edge(Edge::new(8, 4, 7.0)).unwrap();
        g.add_edge(Edge::new(8, 5, 6.0)).unwrap();
        let r = dijkstra(&g.to_csr(), 8);
        // Figure 16(c3) final output after t=4: [7, 5, 3, 4] for j0..j3.
        assert_eq!(r.distances[4], Some(7.0));
        assert_eq!(r.distances[5], Some(5.0));
        assert_eq!(r.distances[6], Some(3.0));
        assert_eq!(r.distances[7], Some(4.0));
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = EdgeList::from_pairs(4, [(0, 1)]).unwrap();
        let r = dijkstra(&g.to_csr(), 0);
        assert_eq!(r.distances[2], None);
        assert_eq!(r.distances[3], None);
        assert_eq!(r.reached(), 2);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let r = dijkstra(&grid(4, 4).to_csr(), 0);
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(r.distances[row * 4 + col], Some((row + col) as f64));
            }
        }
    }

    #[test]
    fn shorter_path_wins_over_fewer_hops() {
        // 0→1 (10) vs 0→2→1 (1+1).
        let g = EdgeList::from_edges(
            3,
            vec![
                Edge::new(0, 1, 10.0),
                Edge::new(0, 2, 1.0),
                Edge::new(2, 1, 1.0),
            ],
        )
        .unwrap();
        let r = dijkstra(&g.to_csr(), 0);
        assert_eq!(r.distances[1], Some(2.0));
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn rejects_negative_weights() {
        let g = EdgeList::from_edges(2, vec![Edge::new(0, 1, -1.0)]).unwrap();
        let _ = dijkstra(&g.to_csr(), 0);
    }

    proptest! {
        #[test]
        fn dijkstra_agrees_with_bellman_ford(
            n in 2usize..40,
            edge_factor in 1usize..6,
            seed in 0u64..30,
        ) {
            let g = Rmat::new(n, n * edge_factor)
                .seed(seed)
                .max_weight(16)
                .generate();
            let csr = g.to_csr();
            let a = dijkstra(&csr, 0);
            let b = bellman_ford(&csr, 0);
            for v in 0..n {
                match (a.distances[v], b.distances[v]) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    (None, None) => {}
                    other => prop_assert!(false, "mismatch at {v}: {other:?}"),
                }
            }
        }

        #[test]
        fn distances_satisfy_triangle_inequality(
            n in 2usize..40,
            seed in 0u64..20,
        ) {
            let g = Rmat::new(n, n * 4).seed(seed).max_weight(8).generate();
            let csr = g.to_csr();
            let r = dijkstra(&csr, 0);
            for (u, v, w) in csr.edge_triples() {
                if let Some(du) = r.distances[u as usize] {
                    let dv = r.distances[v as usize].expect("edge target reachable");
                    prop_assert!(dv <= du + f64::from(w) + 1e-9);
                }
            }
        }
    }
}
