//! Gold sparse matrix–vector multiplication.
//!
//! Two flavours: the plain linear-algebra `y = Aᵀx` (what a crossbar tile
//! physically computes, §3.1 Figure 7b) and the *vertex-program* SpMV of
//! Table 2, which first normalises each source's property by its out-degree
//! (`E.value = V.prop / V.outdegree * E.weight`, `reduce = sum`).

use crate::csr::Csr;

/// Computes `y = Aᵀ x`: `y[v] = Σ_{u→v} w(u,v) · x[u]`.
///
/// # Examples
///
/// ```
/// use graphr_graph::EdgeList;
/// use graphr_graph::algorithms::spmv::spmv;
///
/// let g = EdgeList::from_pairs(3, [(0, 1), (0, 2), (1, 2)])?;
/// let y = spmv(&g.to_csr(), &[1.0, 10.0, 100.0]);
/// assert_eq!(y, vec![0.0, 1.0, 11.0]);
/// # Ok::<(), graphr_graph::GraphError>(())
/// ```
///
/// # Panics
///
/// Panics if `x.len()` differs from the vertex count.
#[must_use]
pub fn spmv(csr: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        csr.num_vertices(),
        "input vector length {} != vertex count {}",
        x.len(),
        csr.num_vertices()
    );
    let mut y = vec![0.0; csr.num_vertices()];
    for (u, v, w) in csr.edge_triples() {
        y[v as usize] += f64::from(w) * x[u as usize];
    }
    y
}

/// The Table-2 SpMV vertex program: one pass of
/// `y[v] = Σ_{u→v} w(u,v) · x[u] / outdeg(u)`.
///
/// # Panics
///
/// Panics if `x.len()` differs from the vertex count.
#[must_use]
pub fn spmv_vertex_program(csr: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        csr.num_vertices(),
        "input vector length {} != vertex count {}",
        x.len(),
        csr.num_vertices()
    );
    let mut y = vec![0.0; csr.num_vertices()];
    for u in 0..csr.num_vertices() as u32 {
        let deg = csr.out_degree(u);
        if deg == 0 {
            continue;
        }
        let share = x[u as usize] / deg as f64;
        for (v, w) in csr.neighbors(u) {
            y[v as usize] += f64::from(w) * share;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::{Edge, EdgeList};
    use crate::generators::rmat::Rmat;
    use proptest::prelude::*;

    #[test]
    fn matches_dense_reference_on_figure4_matrix() {
        // Figure 4(a): nonzeros (0,2,3),(0,3,8),(1,2,7),(2,0,1),(3,1,4),(3,3,2).
        let g = EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 2, 3.0),
                Edge::new(0, 3, 8.0),
                Edge::new(1, 2, 7.0),
                Edge::new(2, 0, 1.0),
                Edge::new(3, 1, 4.0),
                Edge::new(3, 3, 2.0),
            ],
        )
        .unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        // y = Aᵀx: y[0] = 1*3 (from 2→0) = 3; y[1] = 4*4 = 16;
        // y[2] = 3*1 + 7*2 = 17; y[3] = 8*1 + 2*4 = 16.
        assert_eq!(spmv(&g.to_csr(), &x), vec![3.0, 16.0, 17.0, 16.0]);
    }

    #[test]
    fn vertex_program_normalises_by_out_degree() {
        let g = EdgeList::from_pairs(3, [(0, 1), (0, 2)]).unwrap();
        let y = spmv_vertex_program(&g.to_csr(), &[6.0, 0.0, 0.0]);
        assert_eq!(y, vec![0.0, 3.0, 3.0]);
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        let g = Rmat::new(32, 128).seed(1).generate();
        let y = spmv(&g.to_csr(), &vec![0.0; 32]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn rejects_wrong_length_input() {
        let g = EdgeList::from_pairs(3, [(0, 1)]).unwrap();
        let _ = spmv(&g.to_csr(), &[1.0]);
    }

    proptest! {
        #[test]
        fn linearity(
            n in 1usize..24,
            seed in 0u64..20,
            a in -4.0f64..4.0,
        ) {
            let g = Rmat::new(n, n * 3).seed(seed).max_weight(4).generate();
            let csr = g.to_csr();
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let ax: Vec<f64> = x.iter().map(|v| v * a).collect();
            let y1: Vec<f64> = spmv(&csr, &ax);
            let y2: Vec<f64> = spmv(&csr, &x).iter().map(|v| v * a).collect();
            for (p, q) in y1.iter().zip(&y2) {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }

        #[test]
        fn vertex_program_preserves_mass_on_full_outdegree_graphs(
            n in 2usize..16,
            seed in 0u64..10,
        ) {
            // Build a graph where every vertex has at least one out-edge by
            // adding a cycle under an R-MAT overlay, with unit weights.
            let mut g = Rmat::new(n, n * 2).seed(seed).generate();
            for v in 0..n as u32 {
                g.add_edge(Edge::unweighted(v, (v + 1) % n as u32)).unwrap();
            }
            let csr = g.to_csr();
            let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let y = spmv_vertex_program(&csr, &x);
            let sx: f64 = x.iter().sum();
            let sy: f64 = y.iter().sum();
            prop_assert!((sx - sy).abs() < 1e-9);
        }
    }
}
