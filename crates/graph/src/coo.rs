//! Coordinate-list (COO) edge storage — the representation GraphR assumes
//! for graphs on disk and in memory ReRAM (paper §2.4, Figure 5).

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::error::GraphError;
use crate::VertexId;

/// Bytes one COO edge record occupies in the binary on-disk / memory-ReRAM
/// layout: two 32-bit vertex ids plus a 32-bit weight (see [`crate::io`]).
/// Every consumer that prices streamed edge data (the executor's memory
/// charges, the out-of-core disk model) derives byte counts from this one
/// constant.
pub const BYTES_PER_EDGE: u64 = 12;

/// One directed, weighted edge: a `(source, destination, weight)` tuple —
/// exactly a COO entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight. Unweighted graphs use `1.0`.
    pub weight: f32,
}

impl Edge {
    /// Creates a weighted edge.
    #[must_use]
    pub fn new(src: VertexId, dst: VertexId, weight: f32) -> Self {
        Edge { src, dst, weight }
    }

    /// Creates an unweighted edge (weight `1.0`).
    #[must_use]
    pub fn unweighted(src: VertexId, dst: VertexId) -> Self {
        Edge::new(src, dst, 1.0)
    }
}

/// A directed graph stored as a coordinate list.
///
/// This is the "graph in COO format" of Figure 9: the form in which edges
/// live on disk, get preprocessed into streaming order, and are loaded into
/// GraphR's memory ReRAM. All other representations are derived from it.
///
/// # Examples
///
/// ```
/// use graphr_graph::{Edge, EdgeList};
///
/// let mut g = EdgeList::new(4);
/// g.add_edge(Edge::new(0, 1, 1.0))?;
/// g.add_edge(Edge::new(1, 2, 2.0))?;
/// g.add_edge(Edge::new(2, 3, 3.0))?;
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_degrees(), vec![1, 1, 1, 0]);
/// # Ok::<(), graphr_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty graph over `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a graph from a pre-built edge vector.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>=
    /// num_vertices`, or [`GraphError::InvalidWeight`] for non-finite
    /// weights.
    pub fn from_edges(num_vertices: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            Self::validate_edge(num_vertices, e)?;
        }
        Ok(EdgeList {
            num_vertices,
            edges,
        })
    }

    /// Convenience constructor from `(src, dst)` pairs with unit weights.
    ///
    /// # Errors
    ///
    /// Same as [`EdgeList::from_edges`].
    pub fn from_pairs(
        num_vertices: usize,
        pairs: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        Self::from_edges(
            num_vertices,
            pairs
                .into_iter()
                .map(|(s, d)| Edge::unweighted(s, d))
                .collect(),
        )
    }

    fn validate_edge(num_vertices: usize, e: &Edge) -> Result<(), GraphError> {
        if (e.src as usize) >= num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u64::from(e.src),
                num_vertices,
            });
        }
        if (e.dst as usize) >= num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u64::from(e.dst),
                num_vertices,
            });
        }
        if !e.weight.is_finite() {
            return Err(GraphError::InvalidWeight {
                src: e.src,
                dst: e.dst,
            });
        }
        Ok(())
    }

    /// Appends one edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or
    /// [`GraphError::InvalidWeight`] as in [`EdgeList::from_edges`].
    pub fn add_edge(&mut self, e: Edge) -> Result<(), GraphError> {
        Self::validate_edge(self.num_vertices, &e)?;
        self.edges.push(e);
        Ok(())
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges as a slice, in their current order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Consumes the list, returning the raw edge vector.
    #[must_use]
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Graph density `|E| / |V|²` — the x-axis of the paper's Figure 21.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / (self.num_vertices as f64 * self.num_vertices as f64)
        }
    }

    /// Out-degree of every vertex.
    #[must_use]
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    #[must_use]
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Sorts edges by `(src, dst)` — row-major order in matrix view, the
    /// order §3.4 assumes for the *input* of preprocessing.
    pub fn sort_source_major(&mut self) {
        self.edges.sort_by_key(|a| (a.src, a.dst));
    }

    /// Sorts edges by `(dst, src)` — column-major order in matrix view.
    pub fn sort_destination_major(&mut self) {
        self.edges.sort_by_key(|a| (a.dst, a.src));
    }

    /// Removes duplicate `(src, dst)` pairs, keeping the first occurrence.
    /// Sorts source-major as a side effect.
    pub fn dedup(&mut self) {
        self.sort_source_major();
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Removes self-loops (`src == dst`).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
    }

    /// Returns the transposed graph (every edge reversed). Used to turn an
    /// out-edge view into an in-edge view.
    #[must_use]
    pub fn transposed(&self) -> EdgeList {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self
                .edges
                .iter()
                .map(|e| Edge::new(e.dst, e.src, e.weight))
                .collect(),
        }
    }

    /// Builds a compressed-sparse-row view (out-edges grouped by source).
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        Csr::from_edge_list(self)
    }

    /// Builds a compressed-sparse-column view, i.e. a CSR of the transpose
    /// (in-edges grouped by destination).
    #[must_use]
    pub fn to_csc(&self) -> Csr {
        Csr::from_edge_list(&self.transposed())
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl Extend<Edge> for EdgeList {
    /// Extends with edges, panicking on invalid ones (use [`EdgeList::add_edge`]
    /// for fallible insertion).
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            self.add_edge(e).expect("invalid edge in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        EdgeList::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_validates_vertex_range() {
        let mut g = EdgeList::new(2);
        assert!(g.add_edge(Edge::unweighted(0, 1)).is_ok());
        assert!(matches!(
            g.add_edge(Edge::unweighted(0, 2)),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            g.add_edge(Edge::unweighted(5, 0)),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn construction_rejects_non_finite_weights() {
        let mut g = EdgeList::new(2);
        assert!(matches!(
            g.add_edge(Edge::new(0, 1, f32::NAN)),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(Edge::new(0, 1, f32::INFINITY)),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn degrees_count_correctly() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn density_matches_definition() {
        let g = diamond();
        assert_eq!(g.density(), 4.0 / 16.0);
        assert_eq!(EdgeList::new(0).density(), 0.0);
    }

    #[test]
    fn sort_orders_are_correct() {
        let mut g = EdgeList::from_pairs(3, [(2, 0), (0, 2), (1, 1), (0, 1)]).unwrap();
        g.sort_source_major();
        let pairs: Vec<_> = g.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 1), (2, 0)]);
        g.sort_destination_major();
        let pairs: Vec<_> = g.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(2, 0), (0, 1), (1, 1), (0, 2)]);
    }

    #[test]
    fn dedup_removes_repeated_pairs() {
        let mut g = EdgeList::from_pairs(3, [(0, 1), (0, 1), (1, 2), (0, 1)]).unwrap();
        g.dedup();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_are_removable() {
        let mut g = EdgeList::from_pairs(3, [(0, 0), (0, 1), (2, 2)]).unwrap();
        g.remove_self_loops();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges()[0], Edge::unweighted(0, 1));
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = g.transposed();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.out_degrees(), g.in_degrees());
        let tt = t.transposed();
        assert_eq!(tt, g);
    }

    #[test]
    fn into_iterator_yields_all_edges() {
        let g = diamond();
        assert_eq!((&g).into_iter().count(), 4);
    }

    #[test]
    fn extend_appends_edges() {
        let mut g = EdgeList::new(3);
        g.extend([Edge::unweighted(0, 1), Edge::unweighted(1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }
}
