//! Edge-list serialisation.
//!
//! Two formats:
//!
//! * **Text** — the SNAP layout the paper's datasets ship in: one
//!   `src dst [weight]` triple per line, `#` comments ignored.
//! * **Binary** — the preprocessed on-disk form of Figure 9: a fixed 16-byte
//!   header followed by 12-byte little-endian records `(u32 src, u32 dst,
//!   f32 weight)`, supporting the strictly sequential block loads the
//!   streaming-apply model requires.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::coo::{Edge, EdgeList};
use crate::error::GraphError;

const BINARY_MAGIC: u32 = 0x4752_4152; // "GRAR"

/// Writes a graph in SNAP-style text format.
///
/// The output starts with a comment header recording the vertex count so
/// that isolated trailing vertices survive a round trip. A `&mut` reference
/// may be passed for any `W: Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(graph: &EdgeList, mut writer: W) -> Result<(), GraphError> {
    writeln!(writer, "# graphr edge list")?;
    writeln!(
        writer,
        "# nodes: {} edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.iter() {
        if e.weight == 1.0 {
            writeln!(writer, "{}\t{}", e.src, e.dst)?;
        } else {
            writeln!(writer, "{}\t{}\t{}", e.src, e.dst, e.weight)?;
        }
    }
    Ok(())
}

/// Reads a graph in SNAP-style text format.
///
/// Lines starting with `#` are comments; a `# nodes: N ...` comment pins the
/// vertex count, otherwise it is inferred as `max id + 1`. Fields may be
/// separated by any ASCII whitespace; a missing weight defaults to `1.0`.
/// A `&mut` reference may be passed for any `R: Read`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and [`GraphError::Io`]
/// on reader failures.
pub fn read_text<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<Edge> = Vec::new();
    let mut declared_vertices: Option<usize> = None;
    let mut max_id: u64 = 0;
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(rest) = comment.trim().strip_prefix("nodes:") {
                let first = rest.split_whitespace().next().unwrap_or("");
                if let Ok(n) = first.parse::<usize>() {
                    declared_vertices = Some(n);
                }
            }
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let src: u32 = parse_field(fields.next(), line_no, "source")?;
        let dst: u32 = parse_field(fields.next(), line_no, "destination")?;
        let weight: f32 = match fields.next() {
            Some(w) => w.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid weight '{w}'"),
            })?,
            None => 1.0,
        };
        max_id = max_id.max(u64::from(src)).max(u64::from(dst));
        edges.push(Edge::new(src, dst, weight));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let num_vertices = declared_vertices.unwrap_or(inferred).max(inferred);
    EdgeList::from_edges(num_vertices, edges)
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what} vertex"),
    })?;
    s.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} vertex '{s}'"),
    })
}

/// Encodes a graph into the compact binary format.
#[must_use]
pub fn to_binary(graph: &EdgeList) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.num_edges() * crate::BYTES_PER_EDGE as usize);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u32_le(1); // format version
    buf.put_u32_le(graph.num_vertices() as u32);
    buf.put_u32_le(graph.num_edges() as u32);
    for e in graph.iter() {
        buf.put_u32_le(e.src);
        buf.put_u32_le(e.dst);
        buf.put_f32_le(e.weight);
    }
    buf.freeze()
}

/// Decodes a graph from the compact binary format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if the magic number, version, or length is
/// wrong, or if any record references an out-of-range vertex.
pub fn from_binary(mut data: &[u8]) -> Result<EdgeList, GraphError> {
    let parse_err = |message: &str| GraphError::Parse {
        line: 0,
        message: message.into(),
    };
    if data.len() < 16 {
        return Err(parse_err("truncated header"));
    }
    if data.get_u32_le() != BINARY_MAGIC {
        return Err(parse_err("bad magic number"));
    }
    if data.get_u32_le() != 1 {
        return Err(parse_err("unsupported format version"));
    }
    let num_vertices = data.get_u32_le() as usize;
    let num_edges = data.get_u32_le() as usize;
    if data.len() != num_edges * crate::BYTES_PER_EDGE as usize {
        return Err(parse_err("edge payload length mismatch"));
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let src = data.get_u32_le();
        let dst = data.get_u32_le();
        let weight = data.get_f32_le();
        edges.push(Edge::new(src, dst, weight));
    }
    EdgeList::from_edges(num_vertices, edges)
}

/// Writes a graph to a SNAP-style text file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_text_file<P: AsRef<Path>>(graph: &EdgeList, path: P) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_text(graph, BufWriter::new(file))
}

/// Reads a graph from a SNAP-style text file at `path`.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be opened and
/// [`GraphError::Parse`] on malformed content.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, GraphError> {
    read_text(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat::Rmat;

    #[test]
    fn text_round_trip_preserves_graph() {
        let g = Rmat::new(64, 200).seed(3).max_weight(8).generate();
        let mut out = Vec::new();
        write_text(&g, &mut out).unwrap();
        let back = read_text(out.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_reader_accepts_snap_style_input() {
        let input = "# Directed graph\n# Nodes here are fake\n0\t1\n1 2 2.5\n\n2\t0\n";
        let g = read_text(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edges()[1].weight, 2.5);
    }

    #[test]
    fn declared_node_count_preserves_isolated_vertices() {
        let input = "# nodes: 10 edges: 1\n0 1\n";
        let g = read_text(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let err = read_text("0 1\nxyz 2\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_text("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("destination"));
    }

    #[test]
    fn binary_round_trip_preserves_graph() {
        let g = Rmat::new(128, 500).seed(5).max_weight(16).generate();
        let bytes = to_binary(&g);
        assert_eq!(bytes.len(), 16 + 500 * 12);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = Rmat::new(16, 10).seed(1).generate();
        let bytes = to_binary(&g);
        assert!(from_binary(&bytes[..8]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(from_binary(&bad_magic).is_err());
        let truncated = &bytes[..bytes.len() - 4];
        assert!(from_binary(truncated).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = Rmat::new(32, 100).seed(9).max_weight(4).generate();
        let path = std::env::temp_dir().join(format!("graphr-io-test-{}.txt", std::process::id()));
        write_text_file(&g, &path).unwrap();
        let back = read_text_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, g);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_text_file("/definitely/not/a/real/path.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn empty_graph_round_trips_both_formats() {
        let g = EdgeList::new(5);
        let mut out = Vec::new();
        write_text(&g, &mut out).unwrap();
        assert_eq!(read_text(out.as_slice()).unwrap(), g);
        assert_eq!(from_binary(&to_binary(&g)).unwrap(), g);
    }
}
