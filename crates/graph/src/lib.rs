//! Graph substrate for the GraphR reproduction.
//!
//! GraphR (HPCA 2018) is evaluated on seven real-world graphs processed by an
//! out-of-core framework. This crate supplies everything below the
//! accelerator model:
//!
//! * [`coo`] / [`csr`] — the sparse representations of paper §2.4
//!   (coordinate list, compressed sparse row/column),
//! * [`generators`] — deterministic synthetic graphs (R-MAT, Erdős–Rényi,
//!   bipartite rating matrices, and structured topologies for tests),
//! * [`datasets`] — a catalog mirroring Table 3 with R-MAT clones of the
//!   SNAP datasets, scalable for fast CI runs,
//! * [`io`] — SNAP-style text and compact binary edge-list formats,
//! * [`partition`] — the 2-level grid partitioning shared by GridGraph's
//!   dual sliding windows and GraphR's block/subgraph tiling,
//! * [`algorithms`] — sequential *gold* implementations of every evaluated
//!   application (PageRank, BFS, SSSP, SpMV, collaborative filtering) used
//!   as correctness oracles by the simulators.
//!
//! # Examples
//!
//! ```
//! use graphr_graph::generators::rmat::Rmat;
//! use graphr_graph::algorithms::pagerank::{pagerank, PageRankParams};
//!
//! let graph = Rmat::new(1 << 8, 4 * (1 << 8)).seed(7).generate();
//! let csr = graph.to_csr();
//! let result = pagerank(&csr, &PageRankParams::default());
//! assert!((result.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
pub mod coo;
pub mod csr;
pub mod datasets;
pub mod error;
pub mod generators;
pub mod io;
pub mod partition;

pub use coo::{Edge, EdgeList, BYTES_PER_EDGE};
pub use csr::Csr;
pub use datasets::{DatasetKind, DatasetSpec, GraphHandle, GraphId, GraphRegistry};
pub use error::GraphError;
pub use partition::GridPartition;

/// Vertex identifier. 32 bits suffice for every graph in the paper's Table 3
/// (largest: LiveJournal at 4.8 M vertices) with room to spare.
pub type VertexId = u32;
