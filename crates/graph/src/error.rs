//! Error type shared across the graph substrate.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while constructing, loading or validating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id at or beyond the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The declared number of vertices.
        num_vertices: usize,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// An edge weight was NaN or infinite.
    InvalidWeight {
        /// Source vertex of the offending edge.
        src: u32,
        /// Destination vertex of the offending edge.
        dst: u32,
    },
    /// A parse error while reading an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidWeight { src, dst } => {
                write!(f, "edge ({src}, {dst}) has a non-finite weight")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert_eq!(
            e.to_string(),
            "vertex id 9 out of range for graph with 4 vertices"
        );
        assert_eq!(
            GraphError::EmptyGraph.to_string(),
            "operation requires a non-empty graph"
        );
        let p = GraphError::Parse {
            line: 3,
            message: "expected two fields".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
