//! Regenerates Figure 21: sensitivity to dataset sparsity.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let (_runs, text) = graphr_bench::figures::figure21(&ctx);
    println!("{text}");
}
