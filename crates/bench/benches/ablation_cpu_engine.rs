//! Ablation: GridGraph dual windows vs X-Stream scatter/gather (section 2.1).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::cpu_engine(&ctx));
}
