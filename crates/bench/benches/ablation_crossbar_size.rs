//! Ablation: crossbar size sweep (section 3.1).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::crossbar_size(&ctx));
}
