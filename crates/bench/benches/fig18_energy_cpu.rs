//! Regenerates Figure 18: GraphR energy saving over the CPU baseline.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let (_runs, text) = graphr_bench::figures::figure18(&ctx);
    println!("{text}");
}
