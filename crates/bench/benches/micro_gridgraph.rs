//! Criterion microbenchmarks of the CPU software substrate: dual-sliding-
//! windows streaming throughput and one full GraphR MAC scan, so the
//! simulator's own speed (not the modelled platforms') is tracked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphr_core::exec::streaming::StreamingExecutor;
use graphr_core::{GraphRConfig, TiledGraph};
use graphr_graph::generators::rmat::Rmat;
use graphr_gridgraph::engine::{GridEngine, PageRankSettings};
use graphr_units::FixedSpec;

fn substrate_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    let edges = 100_000usize;
    let graph = Rmat::new(edges / 8, edges).seed(2).generate();
    group.throughput(Throughput::Elements(edges as u64));

    group.bench_with_input(
        BenchmarkId::new("gridgraph_pagerank_iteration", edges),
        &graph,
        |b, graph| {
            let engine = GridEngine::new(graph, 4);
            let settings = PageRankSettings {
                max_iterations: 1,
                tolerance: 0.0,
                ..PageRankSettings::default()
            };
            b.iter(|| engine.pagerank(std::hint::black_box(&settings)));
        },
    );

    group.bench_with_input(
        BenchmarkId::new("graphr_mac_scan", edges),
        &graph,
        |b, graph| {
            let config = GraphRConfig::default();
            let tiled = TiledGraph::preprocess(graph, &config).unwrap();
            let spec = FixedSpec::new(16, 8).unwrap();
            let x = vec![1.0; graph.num_vertices()];
            b.iter(|| {
                let mut exec = StreamingExecutor::new(&tiled, &config, spec);
                exec.scan_mac(&|w, _, _| f64::from(w), &[std::hint::black_box(&x)])
            });
        },
    );
    group.finish();
}

criterion_group!(benches, substrate_benches);
criterion_main!(benches);
