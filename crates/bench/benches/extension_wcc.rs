//! Extension: weakly-connected components on GraphR.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::wcc_extension(&ctx));
}
