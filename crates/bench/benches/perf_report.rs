//! `perf_report` — run the `micro_runtime` scenarios as structured
//! measurements and write the perf baseline to `BENCH_micro.json`.
//!
//! Every scenario's simulated facts (edges streamed, bytes loaded from
//! disk, bytes exchanged, simulated total, bottleneck classification, and
//! the serve scenario's latency percentiles) are deterministic; the one
//! host-measured field is `plan_time_ms`, the planning-time baseline CI
//! tracks across runs. `GRAPHR_BENCH_OUT` overrides the output path.

use graphr_bench::perf;

fn main() {
    let rows = perf::run_all();
    println!("perf_report: {} scenario(s)", rows.len());
    for row in &rows {
        print!(
            "  {}: {} rounds, {:.2} MiB streamed, plan {:.3} ms, {}-bound",
            row.name,
            row.iterations,
            row.bytes_streamed as f64 / (1024.0 * 1024.0),
            row.plan_time_ms,
            row.bound,
        );
        if row.bytes_loaded > 0 {
            print!(
                ", {:.2} MiB loaded",
                row.bytes_loaded as f64 / (1024.0 * 1024.0)
            );
        }
        if row.bytes_exchanged > 0 {
            print!(", {:.1} KiB exchanged", row.bytes_exchanged as f64 / 1024.0);
        }
        if let Some(serve) = &row.serve {
            print!(
                ", latency p50/p95/p99 = {}/{}/{} ns ({} admitted, {} waves)",
                serve.p50_ns, serve.p95_ns, serve.p99_ns, serve.admitted, serve.waves
            );
        }
        println!();
    }
    let out = std::env::var("GRAPHR_BENCH_OUT").unwrap_or_else(|_| "BENCH_micro.json".to_owned());
    std::fs::write(&out, perf::render_json(&rows)).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("perf_report: baseline written to {out}");
}
