//! Ablation: graph-engine count scalability.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::ge_count(&ctx));
}
