//! Regenerates Table 3 (dataset catalog, with the generated clones profiled).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::figures::table3(&ctx));
}
