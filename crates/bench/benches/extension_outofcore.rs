//! Extension: the out-of-core deployment regime (Figure 9's workflow) —
//! GraphR as a drop-in accelerator with blocks streaming from disk.

use graphr_core::outofcore::{estimate_out_of_core, DiskModel};
use graphr_core::sim::{run_pagerank, PageRankOptions};
use graphr_core::TiledGraph;
use graphr_graph::DatasetSpec;

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let graph = ctx.graph(&DatasetSpec::web_google());
    let config = ctx.config();
    let tiled = TiledGraph::preprocess(&graph, config).expect("valid configuration");
    let run = run_pagerank(
        &graph,
        config,
        &PageRankOptions {
            max_iterations: 10,
            tolerance: 0.0,
            ..PageRankOptions::default()
        },
    )
    .expect("valid configuration");
    let mut rows = Vec::new();
    for (name, disk) in [
        ("SATA SSD", DiskModel::sata_ssd()),
        ("NVMe", DiskModel::nvme()),
    ] {
        let est = estimate_out_of_core(&tiled, &run.metrics, &disk);
        rows.push(vec![
            name.to_string(),
            format!("{}", est.compute_time),
            format!("{}", est.disk_time),
            format!("{}", est.overlapped_time),
            if est.is_disk_bound() {
                "disk"
            } else {
                "compute"
            }
            .to_string(),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: out-of-core deployment (PageRank on WG, 10 iterations)",
            &[
                "disk",
                "compute",
                "disk loads",
                "overlapped total",
                "bound by"
            ],
            &rows,
        )
    );
    println!(
        "With the preprocessed sequential layout the loads double-buffer against\n\
         compute; the accelerator is fast enough that storage becomes the\n\
         bottleneck of an out-of-core deployment."
    );
}
