//! Extension: the out-of-core deployment regime (Figure 9's workflow) —
//! GraphR as a drop-in accelerator with blocks streaming from disk.
//!
//! Two views: the legacy aggregate estimate (every iteration re-streams
//! the whole ordered edge list — exact for dense PageRank), and the
//! plan-aware per-iteration accounting, where a traversal's frontier-pruned
//! `ScanPlan`s skip disk blocks and can hand the bottleneck back to the
//! accelerator.

use graphr_core::exec::StreamingExecutor;
use graphr_core::outofcore::{estimate_out_of_core, DiskModel};
use graphr_core::sim::{run_bfs_with, run_pagerank, PageRankOptions, TraversalOptions};
use graphr_core::TiledGraph;
use graphr_graph::DatasetSpec;

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let graph = ctx.graph(&DatasetSpec::web_google());
    let config = ctx.config();
    let tiled = TiledGraph::preprocess(&graph, config).expect("valid configuration");
    let run = run_pagerank(
        &graph,
        config,
        &PageRankOptions {
            max_iterations: 10,
            tolerance: 0.0,
            ..PageRankOptions::default()
        },
    )
    .expect("valid configuration");
    let mut rows = Vec::new();
    for (name, disk) in [
        ("SATA SSD", DiskModel::sata_ssd()),
        ("NVMe", DiskModel::nvme()),
    ] {
        let est = estimate_out_of_core(&tiled, &run.metrics, &disk);
        rows.push(vec![
            name.to_string(),
            format!("{}", est.compute_time),
            format!("{}", est.disk_time),
            format!("{}", est.overlapped_time),
            if est.is_disk_bound() {
                "disk"
            } else {
                "compute"
            }
            .to_string(),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: out-of-core deployment (PageRank on WG, 10 iterations)",
            &[
                "disk",
                "compute",
                "disk loads",
                "overlapped total",
                "bound by"
            ],
            &rows,
        )
    );
    println!(
        "With the preprocessed sequential layout the loads double-buffer against\n\
         compute; the accelerator is fast enough that storage becomes the\n\
         bottleneck of an out-of-core deployment. PageRank's plans are dense, so\n\
         the aggregate estimate above is exact for it.\n"
    );

    // Plan-aware accounting on a traversal: BFS's frontier-pruned plans
    // load only the spans holding active sources, so the disk side shrinks
    // with the frontier instead of restreaming |E| every round.
    let spec = TraversalOptions::default().spec;
    let mut rows = Vec::new();
    for (name, disk) in [
        ("SATA SSD", DiskModel::sata_ssd()),
        ("NVMe", DiskModel::nvme()),
    ] {
        let mut exec = StreamingExecutor::new(&tiled, config, spec).with_disk(disk);
        let bfs =
            run_bfs_with(&graph, &mut exec, &TraversalOptions::default()).expect("valid traversal");
        let m = &bfs.metrics;
        let legacy = estimate_out_of_core(&tiled, m, &disk);
        rows.push(vec![
            name.to_string(),
            format!("{}", legacy.overlapped_time),
            format!("{}", m.disk.overlapped),
            format!(
                "{:.1}x",
                legacy.bytes_per_iteration as f64 * m.iterations as f64
                    / m.disk.bytes_loaded.max(1) as f64
            ),
            if m.disk.is_disk_bound(m.total_time()) {
                "disk"
            } else {
                "compute"
            }
            .to_string(),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Plan-aware out-of-core (BFS on WG, frontier-pruned loads)",
            &[
                "disk",
                "legacy estimate",
                "plan-aware total",
                "bytes saved",
                "bound by"
            ],
            &rows,
        )
    );
    println!(
        "The per-iteration model overlaps each round's loads against that round's\n\
         compute (a pruned plan is only known once the previous frontier settles,\n\
         so prefetch cannot reach across rounds); sparse rounds seek past pruned\n\
         blocks and load almost nothing."
    );
}
