//! Regenerates Figure 20: GraphR vs PIM (Tesseract) performance and energy.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let (_runs, text) = graphr_bench::figures::figure20(&ctx);
    println!("{text}");
}
