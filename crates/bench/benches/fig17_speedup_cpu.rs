//! Regenerates Figure 17: GraphR speedup over the CPU baseline across the full application x dataset grid.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let (_runs, text) = graphr_bench::figures::figure17(&ctx);
    println!("{text}");
}
