//! Criterion microbenchmarks of the ReRAM crossbar datapath: programming
//! and analog MVM at the paper's tile geometry, in both sign modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphr_reram::{ArrayConfig, MatrixArray, SignMode};

fn crossbar_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar");
    for (name, sign) in [
        ("unsigned", SignMode::Unsigned),
        ("differential", SignMode::Differential),
    ] {
        let mut cfg = ArrayConfig::paper_default(8, 8);
        cfg.sign_mode = sign;
        let matrix: Vec<f64> = (0..64).map(|i| (i % 13) as f64 * 0.0625).collect();
        let input: Vec<f64> = (0..8).map(|i| 0.25 + i as f64 * 0.125).collect();
        group.bench_with_input(BenchmarkId::new("program_8x8", name), &cfg, |b, cfg| {
            let mut array = MatrixArray::new(*cfg);
            b.iter(|| array.program_dense(std::hint::black_box(&matrix)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mvm_8x8", name), &cfg, |b, cfg| {
            let mut array = MatrixArray::new(*cfg);
            array.program_dense(&matrix).unwrap();
            b.iter(|| array.mvm(std::hint::black_box(&input)));
        });
    }
    group.finish();
}

criterion_group!(benches, crossbar_benches);
criterion_main!(benches);
