//! Ablation: column-major vs row-major streaming-apply (section 3.3).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::streaming_order(&ctx));
}
