//! Extension: stuck-at fault tolerance sweep.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::faults(&ctx));
}
