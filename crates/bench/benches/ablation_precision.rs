//! Ablation: datapath precision vs result fidelity (section 3.2).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::precision(&ctx));
}
