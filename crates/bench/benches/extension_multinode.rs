//! Extension: multi-node GraphR scaling (the paper's declared future
//! work, section 3.1) — the legacy dense-all-gather PageRank estimate on
//! the WebGoogle clone across cluster sizes, then the plan-aware cluster
//! subsystem on a sparse-frontier BFS, where the frontier-delta exchange
//! is asserted to beat the dense all-gather baseline.

use graphr_core::multinode::{
    estimate_pagerank_scaling, ClusterExecutor, MultiNodeConfig, MultiNodeEstimate,
};
use graphr_core::sim::{run_bfs, run_bfs_with, PageRankOptions, TraversalOptions};
use graphr_core::TiledGraph;
use graphr_graph::generators::structured::grid;
use graphr_graph::DatasetSpec;

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let graph = ctx.graph(&DatasetSpec::web_google());
    let opts = PageRankOptions {
        max_iterations: 5,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16] {
        let est = estimate_pagerank_scaling(
            &graph,
            ctx.config(),
            &MultiNodeConfig::pcie_cluster(nodes),
            &opts,
        )
        .expect("valid configuration");
        rows.push(vec![
            nodes.to_string(),
            format!("{}", est.bottleneck_scan_time),
            format!("{}", est.exchange_time),
            format!("{}", est.total_time),
            format!("{:.2}x", est.speedup),
            format!("{}", est.total_energy),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: multi-node GraphR, legacy dense all-gather (PageRank on WG, 5 iterations)",
            &[
                "nodes",
                "bottleneck scan",
                "exchange",
                "total",
                "speedup",
                "energy"
            ],
            &rows,
        )
    );

    cluster_sparse_frontier();
}

/// The plan-aware cluster subsystem on the workload the dense model
/// prices worst: a sparse-frontier BFS, where each round updates only a
/// thin wavefront and the frontier-delta exchange ships exactly those
/// properties.
fn cluster_sparse_frontier() {
    let g = grid(160, 160);
    let config = graphr_core::GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let opts = TraversalOptions::default();
    let single = run_bfs(&g, &config, &opts).expect("single-node bfs");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");

    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        let mut cluster = ClusterExecutor::new(
            &tiled,
            &config,
            opts.spec,
            MultiNodeConfig::pcie_cluster(nodes),
        );
        let run = run_bfs_with(&g, &mut cluster, &opts).expect("cluster bfs");
        assert_eq!(
            run.distances, single.distances,
            "partitioning must not change BFS labels ({nodes} nodes)"
        );
        let dense =
            MultiNodeEstimate::dense_exchange_bytes(g.num_vertices(), run.metrics.iterations);
        if nodes > 1 {
            assert!(
                run.metrics.net.bytes_exchanged < dense,
                "plan-aware exchange must beat the dense all-gather: {} vs {} bytes",
                run.metrics.net.bytes_exchanged,
                dense
            );
        } else {
            assert!(
                !run.metrics.net.is_active(),
                "a one-node cluster has no interconnect"
            );
        }
        // A one-node cluster has no interconnect and therefore no
        // net.overlapped; its cluster total *is* its elapsed time.
        let cluster_total = if run.metrics.net.is_active() {
            run.metrics.net.overlapped
        } else {
            run.metrics.total_time()
        };
        rows.push(vec![
            nodes.to_string(),
            format!("{:.1} KiB", run.metrics.net.bytes_exchanged as f64 / 1024.0),
            format!("{:.1} KiB", dense as f64 / 1024.0),
            format!("{}", run.metrics.net.time),
            format!("{}", run.metrics.total_time()),
            format!("{}", cluster_total),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: plan-aware cluster execution (sparse-frontier BFS on 160x160 grid)",
            &[
                "nodes",
                "exchanged",
                "dense all-gather",
                "exchange time",
                "compute+exchange",
                "cluster total"
            ],
            &rows,
        )
    );
}
