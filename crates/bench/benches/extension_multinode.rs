//! Extension: multi-node GraphR scaling (the paper's declared future
//! work, section 3.1) — PageRank on the WebGoogle clone across cluster
//! sizes.

use graphr_core::multinode::{estimate_pagerank_scaling, MultiNodeConfig};
use graphr_core::sim::PageRankOptions;
use graphr_graph::DatasetSpec;

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let graph = ctx.graph(&DatasetSpec::web_google());
    let opts = PageRankOptions {
        max_iterations: 5,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16] {
        let est = estimate_pagerank_scaling(
            &graph,
            ctx.config(),
            &MultiNodeConfig::pcie_cluster(nodes),
            &opts,
        )
        .expect("valid configuration");
        rows.push(vec![
            nodes.to_string(),
            format!("{}", est.bottleneck_scan_time),
            format!("{}", est.exchange_time),
            format!("{}", est.total_time),
            format!("{:.2}x", est.speedup),
            format!("{}", est.total_energy),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: multi-node GraphR (PageRank on WG, 5 iterations)",
            &[
                "nodes",
                "bottleneck scan",
                "exchange",
                "total",
                "speedup",
                "energy"
            ],
            &rows,
        )
    );
}
