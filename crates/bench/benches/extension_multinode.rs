//! Extension: multi-node GraphR scaling (the paper's declared future
//! work, section 3.1) — the legacy dense-all-gather PageRank estimate on
//! the WebGoogle clone across cluster sizes, then the plan-aware cluster
//! subsystem on a sparse-frontier BFS, where the frontier-delta exchange
//! is asserted to beat the dense all-gather baseline.

use graphr_core::exec::ScanEngine;
use graphr_core::multinode::{
    estimate_pagerank_scaling, ClusterExecutor, MultiNodeConfig, MultiNodeEstimate, OwnerPolicy,
};
use graphr_core::sim::{run_bfs, run_bfs_with, PageRankOptions, TraversalOptions};
use graphr_core::TiledGraph;
use graphr_graph::generators::structured::grid;
use graphr_graph::DatasetSpec;
use graphr_units::FixedSpec;

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let graph = ctx.graph(&DatasetSpec::web_google());
    let opts = PageRankOptions {
        max_iterations: 5,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16] {
        let est = estimate_pagerank_scaling(
            &graph,
            ctx.config(),
            &MultiNodeConfig::pcie_cluster(nodes),
            &opts,
        )
        .expect("valid configuration");
        rows.push(vec![
            nodes.to_string(),
            format!("{}", est.bottleneck_scan_time),
            format!("{}", est.exchange_time),
            format!("{}", est.total_time),
            format!("{:.2}x", est.speedup),
            format!("{}", est.total_energy),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: multi-node GraphR, legacy dense all-gather (PageRank on WG, 5 iterations)",
            &[
                "nodes",
                "bottleneck scan",
                "exchange",
                "total",
                "speedup",
                "energy"
            ],
            &rows,
        )
    );

    cluster_sparse_frontier();
    skew_aware_ownership();
}

/// Skew-aware strip ownership on a power-law graph: round-robin piles
/// several hub strips onto one node; the degree-weighted (LPT)
/// assignment balances per-node edge loads, tightening the bottleneck
/// `max(per-node edges)` the cluster's iteration time composes from.
fn skew_aware_ownership() {
    // A power-law R-MAT graph over a geometry with many destination
    // strips: hub strips concentrate edges, the skew the round-robin
    // rule suffers under.
    let graph = graphr_graph::generators::rmat::Rmat::new(20_000, 150_000)
        .seed(42)
        .self_loops(false)
        .generate();
    let config = &graphr_core::GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&graph, config).expect("valid geometry");
    let spec = FixedSpec::new(16, 8).expect("Q8.8 is valid");

    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8] {
        let per_policy: Vec<(OwnerPolicy, u64, u64)> =
            [OwnerPolicy::RoundRobin, OwnerPolicy::DegreeWeighted]
                .into_iter()
                .map(|owner| {
                    let mut cluster = ClusterExecutor::new(
                        &tiled,
                        config,
                        spec,
                        MultiNodeConfig::pcie_cluster(nodes).with_owner(owner),
                    );
                    let full = cluster.plan(None);
                    let shards = cluster.shard(&full);
                    let max = shards
                        .iter()
                        .map(|s| s.stats().edges_planned)
                        .max()
                        .unwrap();
                    let mean =
                        shards.iter().map(|s| s.stats().edges_planned).sum::<u64>() / nodes as u64;
                    (owner, max, mean)
                })
                .collect();
        let (_, rr_max, rr_mean) = per_policy[0];
        let (_, deg_max, deg_mean) = per_policy[1];
        assert!(
            deg_max <= rr_max,
            "degree-weighted ownership must not worsen the bottleneck: {deg_max} vs {rr_max}"
        );
        rows.push(vec![
            nodes.to_string(),
            rr_max.to_string(),
            format!("{:.2}", rr_max as f64 / rr_mean.max(1) as f64),
            deg_max.to_string(),
            format!("{:.2}", deg_max as f64 / deg_mean.max(1) as f64),
            format!("{:.2}x", rr_max as f64 / deg_max.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: skew-aware strip ownership (full-plan edge loads, power-law R-MAT 20k/150k)",
            &[
                "nodes",
                "rr max edges",
                "rr imbalance",
                "degree max edges",
                "degree imbalance",
                "bottleneck win"
            ],
            &rows,
        )
    );
}

/// The plan-aware cluster subsystem on the workload the dense model
/// prices worst: a sparse-frontier BFS, where each round updates only a
/// thin wavefront and the frontier-delta exchange ships exactly those
/// properties.
fn cluster_sparse_frontier() {
    let g = grid(160, 160);
    let config = graphr_core::GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let opts = TraversalOptions::default();
    let single = run_bfs(&g, &config, &opts).expect("single-node bfs");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");

    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        let mut cluster = ClusterExecutor::new(
            &tiled,
            &config,
            opts.spec,
            MultiNodeConfig::pcie_cluster(nodes),
        );
        let run = run_bfs_with(&g, &mut cluster, &opts).expect("cluster bfs");
        assert_eq!(
            run.distances, single.distances,
            "partitioning must not change BFS labels ({nodes} nodes)"
        );
        let dense =
            MultiNodeEstimate::dense_exchange_bytes(g.num_vertices(), run.metrics.iterations);
        if nodes > 1 {
            assert!(
                run.metrics.net.bytes_exchanged < dense,
                "plan-aware exchange must beat the dense all-gather: {} vs {} bytes",
                run.metrics.net.bytes_exchanged,
                dense
            );
        } else {
            assert!(
                !run.metrics.net.is_active(),
                "a one-node cluster has no interconnect"
            );
        }
        // A one-node cluster has no interconnect and therefore no
        // net.overlapped; its cluster total *is* its elapsed time.
        let cluster_total = if run.metrics.net.is_active() {
            run.metrics.net.overlapped
        } else {
            run.metrics.total_time()
        };
        rows.push(vec![
            nodes.to_string(),
            format!("{:.1} KiB", run.metrics.net.bytes_exchanged as f64 / 1024.0),
            format!("{:.1} KiB", dense as f64 / 1024.0),
            format!("{}", run.metrics.net.time),
            format!("{}", run.metrics.total_time()),
            format!("{}", cluster_total),
        ]);
    }
    println!(
        "{}",
        graphr_bench::report::render_table(
            "Extension: plan-aware cluster execution (sparse-frontier BFS on 160x160 grid)",
            &[
                "nodes",
                "exchanged",
                "dense all-gather",
                "exchange time",
                "compute+exchange",
                "cluster total"
            ],
            &rows,
        )
    );
}
