//! Ablation: empty-window skipping (section 3.3).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::skip_empty(&ctx));
}
