//! Ablation: analog programming-noise tolerance (section 1 claim).

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    println!("{}", graphr_bench::ablations::noise(&ctx));
}
