//! Regenerates Figure 19: GraphR vs GPU performance and energy.

fn main() {
    let ctx = graphr_bench::ExperimentContext::from_env();
    let (_runs, text) = graphr_bench::figures::figure19(&ctx);
    println!("{text}");
}
