//! Regenerates Table 1 (architecture comparison) and Tables 4/5 (platform specs).

fn main() {
    println!("{}", graphr_bench::figures::table1());
}
