//! Microbenchmark: the `graphr-runtime` parallel executor vs. the serial
//! reference on a 100 k-edge R-MAT graph, plus the session cache's
//! cold-vs-warm preprocessing saving.
//!
//! On a multi-core host the strip-sharded executor should deliver ≥ 2×
//! wall-clock speedup on the scan-heavy PageRank workload; on a
//! single-core host it degrades to the serial unit loop (speedup ≈ 1).
//! Either way the results are bit-identical — asserted here on every run.

use std::time::Instant;

use graphr_core::sim::{PageRankOptions, TraversalOptions};
use graphr_core::GraphRConfig;
use graphr_graph::generators::rmat::Rmat;
use graphr_graph::GraphHandle;
use graphr_runtime::{pool, ExecMode, Job, JobSpec, Session};

fn best_of<F: FnMut() -> std::time::Duration>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| run().as_secs_f64())
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let threads = pool::available_threads();
    println!("micro_runtime: {threads} host threads");

    // ≥ 100 k edges; 50 k vertices → 13 destination strips under the
    // default 4096-wide §5.2 geometry, enough units to shard.
    let graph = Rmat::new(50_000, 100_000).seed(9).max_weight(16).generate();
    let handle = GraphHandle::new("rmat-100k", graph);
    let config = GraphRConfig::default();

    for (name, spec) in [
        (
            "pagerank(5 iters)",
            JobSpec::PageRank(PageRankOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..PageRankOptions::default()
            }),
        ),
        ("sssp", JobSpec::Sssp(TraversalOptions::default())),
    ] {
        // Warm one session per mode so only scan time is measured.
        let serial = Session::new(config.clone()).with_threads(1);
        let parallel = Session::new(config.clone()).with_threads(threads);
        let job_s = Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Serial);
        let job_p = Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Parallel);
        let out_s = serial.submit(&job_s).expect("serial run");
        let out_p = parallel.submit(&job_p).expect("parallel run");
        assert_eq!(
            out_s.output, out_p.output,
            "parallel must be bit-identical to serial"
        );

        let t_serial = best_of(3, || {
            let start = Instant::now();
            serial.submit(&job_s).expect("serial rep");
            start.elapsed()
        });
        let t_parallel = best_of(3, || {
            let start = Instant::now();
            parallel.submit(&job_p).expect("parallel rep");
            start.elapsed()
        });
        println!(
            "  {name}: serial {:.1} ms, parallel {:.1} ms → {:.2}x speedup",
            t_serial * 1e3,
            t_parallel * 1e3,
            t_serial / t_parallel
        );
    }

    // Cache: cold submit (tiler runs) vs warm submit (tiler skipped).
    let session = Session::new(config).with_threads(threads);
    let job = Job::new(
        handle,
        JobSpec::PageRank(PageRankOptions {
            max_iterations: 1,
            tolerance: 0.0,
            ..PageRankOptions::default()
        }),
    );
    let start = Instant::now();
    let cold = session.submit(&job).expect("cold submit");
    let t_cold = start.elapsed().as_secs_f64();
    assert_eq!(cold.cache_hits, 0);
    let start = Instant::now();
    let warm = session.submit(&job).expect("warm submit");
    let t_warm = start.elapsed().as_secs_f64();
    assert!(warm.cache_hits > 0, "second submit must hit the cache");
    println!(
        "  session cache: cold {:.1} ms (tiler) vs warm {:.1} ms → {:.2}x",
        t_cold * 1e3,
        t_warm * 1e3,
        t_cold / t_warm
    );
}
