//! Microbenchmark: the `graphr-runtime` parallel executor vs. the serial
//! reference on a 100 k-edge R-MAT graph, the session cache's cold-vs-warm
//! preprocessing saving, and the plan layer's sparse-frontier win —
//! full-scan vs. pruned-plan BFS iterations on a high-diameter grid.
//!
//! On a multi-core host the strip-sharded executor should deliver ≥ 2×
//! wall-clock speedup on the scan-heavy PageRank workload; on a
//! single-core host it degrades to the serial unit loop (speedup ≈ 1).
//! Either way the results are bit-identical — asserted here on every run,
//! as is the pruned-plan BFS being strictly cheaper than full scans.

use std::time::Instant;

use graphr_bench::perf::{bfs_rounds_dense, bfs_rounds_on};
use graphr_core::exec::mask::FrontierMask;
use graphr_core::exec::{ScanEngine, StreamingExecutor};
use graphr_core::multinode::{ClusterExecutor, MultiNodeConfig, MultiNodeEstimate};
use graphr_core::outofcore::{estimate_out_of_core, DiskModel};
use graphr_core::sim::{PageRankOptions, TraversalOptions};
use graphr_core::{GraphRConfig, TiledGraph};
use graphr_graph::generators::rmat::Rmat;
use graphr_graph::generators::structured::grid;
use graphr_graph::{GraphHandle, BYTES_PER_EDGE};
use graphr_runtime::{pool, ExecMode, Job, JobSpec, ParallelExecutor, Session};
use graphr_units::FixedSpec;

fn best_of<F: FnMut() -> std::time::Duration>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| run().as_secs_f64())
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let threads = pool::available_threads();
    println!("micro_runtime: {threads} host threads");

    // ≥ 100 k edges; 50 k vertices → 13 destination strips under the
    // default 4096-wide §5.2 geometry, enough units to shard.
    let graph = Rmat::new(50_000, 100_000).seed(9).max_weight(16).generate();
    let handle = GraphHandle::new("rmat-100k", graph);
    let config = GraphRConfig::default();

    for (name, spec) in [
        (
            "pagerank(5 iters)",
            JobSpec::PageRank(PageRankOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..PageRankOptions::default()
            }),
        ),
        ("sssp", JobSpec::Sssp(TraversalOptions::default())),
    ] {
        // Warm one session per mode so only scan time is measured.
        let serial = Session::new(config.clone()).with_threads(1);
        let parallel = Session::new(config.clone()).with_threads(threads);
        let job_s = Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Serial);
        let job_p = Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Parallel);
        let out_s = serial.submit(&job_s).expect("serial run");
        let out_p = parallel.submit(&job_p).expect("parallel run");
        assert_eq!(
            out_s.output, out_p.output,
            "parallel must be bit-identical to serial"
        );

        let t_serial = best_of(3, || {
            let start = Instant::now();
            serial.submit(&job_s).expect("serial rep");
            start.elapsed()
        });
        let t_parallel = best_of(3, || {
            let start = Instant::now();
            parallel.submit(&job_p).expect("parallel rep");
            start.elapsed()
        });
        println!(
            "  {name}: serial {:.1} ms, parallel {:.1} ms → {:.2}x speedup",
            t_serial * 1e3,
            t_parallel * 1e3,
            t_serial / t_parallel
        );
    }

    // Cache: cold submit (tiler runs) vs warm submit (tiler skipped).
    let session = Session::new(config).with_threads(threads);
    let job = Job::new(
        handle,
        JobSpec::PageRank(PageRankOptions {
            max_iterations: 1,
            tolerance: 0.0,
            ..PageRankOptions::default()
        }),
    );
    let start = Instant::now();
    let cold = session.submit(&job).expect("cold submit");
    let t_cold = start.elapsed().as_secs_f64();
    assert_eq!(cold.cache_hits, 0);
    let start = Instant::now();
    let warm = session.submit(&job).expect("warm submit");
    let t_warm = start.elapsed().as_secs_f64();
    assert!(warm.cache_hits > 0, "second submit must hit the cache");
    println!(
        "  session cache: cold {:.1} ms (tiler) vs warm {:.1} ms → {:.2}x",
        t_cold * 1e3,
        t_warm * 1e3,
        t_cold / t_warm
    );

    sparse_frontier_case();
    incremental_planner_case();
    frontier_mask_case();
    fused_wave_case();
    serve_stats_case();
    out_of_core_sparse_frontier_case(threads);
    pipelined_prefetch_case(threads);
    cluster_sparse_frontier_case();
    tracing_overhead_case();
}

/// Observability is passive: draining the same serve batch with and
/// without stats collection must leave the simulated `Metrics`
/// bit-identical, and two identical observed drains must render
/// byte-identical registries (the determinism contract for the
/// service-level histograms).
fn serve_stats_case() {
    use graphr_core::stats::StatsRegistry;
    use graphr_runtime::{ServeConfig, Server};

    let handle = GraphHandle::new("grid-120", grid(120, 120));
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let run = |collect: bool| {
        let session = Session::new(config.clone());
        let mut server = Server::new(ServeConfig::default());
        for i in 0..6u32 {
            let spec = JobSpec::Bfs(TraversalOptions {
                source: i * 5,
                ..TraversalOptions::default()
            });
            server
                .enqueue(Job::new(handle.clone(), spec))
                .expect("admit bfs");
        }
        let results = server.drain(&session);
        let metrics: Vec<graphr_core::Metrics> = results
            .iter()
            .map(|r| {
                r.report
                    .as_ref()
                    .expect("serve run")
                    .output
                    .metrics()
                    .clone()
            })
            .collect();
        let rendered = collect.then(|| {
            let mut registry = StatsRegistry::new();
            server.collect_stats(&mut registry);
            registry.render_prometheus()
        });
        (metrics, rendered)
    };
    let (m_plain, _) = run(false);
    let (m_observed, r_first) = run(true);
    let (_, r_second) = run(true);
    assert_eq!(
        m_plain, m_observed,
        "stats collection must not perturb the simulated Metrics"
    );
    assert_eq!(
        r_first, r_second,
        "identical drains must render byte-identical registries"
    );
    println!(
        "  serve stats (120x120 grid, 6-query batch): collection is passive — Metrics bit-identical, registry render reproducible ({} bytes)",
        r_first.map_or(0, |r| r.len()),
    );
}

/// BFS over a dense-plan scan loop runs every iteration in O(|E|); the
/// pruned-plan loop re-plans from the frontier each round, so iteration
/// cost follows the (small) wavefront of a high-diameter structured graph.
fn bfs_rounds(
    tiled: &TiledGraph,
    config: &GraphRConfig,
    pruned: bool,
) -> (Vec<f64>, graphr_core::Metrics) {
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let mut exec = StreamingExecutor::new(tiled, config, spec);
    bfs_rounds_on(&mut exec, spec, tiled.num_vertices(), pruned)
}

fn sparse_frontier_case() {
    // A 120×120 grid: ~14.4 k vertices, diameter ~238 — the frontier is a
    // thin wavefront, the worst case for full scans and the best for
    // pruned plans.
    let g = grid(120, 120);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");

    let t_full = best_of(2, || {
        let start = Instant::now();
        let _ = bfs_rounds(&tiled, &config, false);
        start.elapsed()
    });
    let t_pruned = best_of(2, || {
        let start = Instant::now();
        let _ = bfs_rounds(&tiled, &config, true);
        start.elapsed()
    });
    let (d_full, m_full) = bfs_rounds(&tiled, &config, false);
    let (d_pruned, m_pruned) = bfs_rounds(&tiled, &config, true);
    assert_eq!(d_full, d_pruned, "pruning must not change BFS labels");
    assert!(
        m_pruned.events.bytes_streamed < m_full.events.bytes_streamed,
        "pruned plans must stream fewer edges"
    );
    assert!(
        m_pruned.total_time() < m_full.total_time(),
        "pruned iterations must be cheaper in simulated time: {} vs {}",
        m_pruned.total_time(),
        m_full.total_time()
    );
    println!(
        "  sparse-frontier bfs (120x120 grid, {} rounds): full-scan {:.1} ms host / {} sim, pruned-plan {:.1} ms host / {} sim → {:.1}x sim, {:.1}x fewer edges streamed",
        m_pruned.iterations,
        t_full * 1e3,
        m_full.total_time(),
        t_pruned * 1e3,
        m_pruned.total_time(),
        m_full.total_time().as_nanos() / m_pruned.total_time().as_nanos(),
        m_full.events.bytes_streamed as f64 / m_pruned.events.bytes_streamed.max(1) as f64,
    );
}

/// The incremental planner on the same sparse-frontier BFS: consecutive
/// frontiers overlap, so after the first rebuild every round's plan is a
/// delta patch of the previous one — strictly fewer span-table walks, a
/// measured planning-time win over per-iteration scratch rebuilds, and
/// bit-identical plans throughout (labels and streamed work agree).
fn incremental_planner_case() {
    use graphr_core::exec::PlanSkeleton;
    use std::sync::Arc;

    let g = grid(120, 120);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let skeleton = PlanSkeleton::build(&tiled);

    // Scratch baseline: every round rebuilds its plan through the
    // stateless skeleton; planning time is measured around the rebuild.
    let scratch_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        let inf = spec.max_value();
        let mut dist = vec![inf; n];
        dist[0] = 0.0;
        let mut active = FrontierMask::new(n);
        active.set(0);
        let mut planning = std::time::Duration::ZERO;
        for _ in 0..n {
            let t0 = Instant::now();
            let plan = Arc::new(skeleton.pruned_plan(&tiled, &active));
            planning += t0.elapsed();
            let mut frontier = dist.clone();
            let mut updated = FrontierMask::new(n);
            exec.scan_add_op_planned(
                &plan,
                &|_w, _, _| 1.0,
                &|du, w| du + w,
                &dist,
                &active,
                &mut frontier,
                &mut updated,
            );
            exec.end_iteration();
            dist = frontier;
            active = updated;
            if active.is_empty() {
                break;
            }
        }
        (dist, exec.take_metrics(), planning.as_secs_f64())
    };
    let (d_scratch, m_scratch, _) = scratch_run();
    let t_scratch = best_of(5, || std::time::Duration::from_secs_f64(scratch_run().2));

    // Delta planner: the engine's own plan() path; Metrics::plan carries
    // the measured planning time.
    let delta_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        bfs_rounds_on(&mut exec, spec, n, true)
    };
    let (d_delta, m_delta) = delta_run();
    let t_delta = best_of(5, || {
        std::time::Duration::from_secs_f64(delta_run().1.plan.time.as_secs())
    });

    assert_eq!(d_scratch, d_delta, "delta plans must not change labels");
    assert_eq!(
        m_scratch.events, m_delta.events,
        "delta plans must stream exactly what scratch plans stream"
    );
    assert!(
        m_delta.plan.delta_patches > m_delta.plan.full_rebuilds,
        "overlapping BFS frontiers must mostly patch: {:?}",
        m_delta.plan
    );
    assert!(
        t_delta < t_scratch,
        "delta planning must beat per-iteration rebuilds: {:.3} ms vs {:.3} ms",
        t_delta * 1e3,
        t_scratch * 1e3
    );
    println!(
        "  incremental planner (120x120 grid bfs, {} rounds): {} delta patches / {} rebuilds, {} units reused; planning {:.3} ms vs {:.3} ms scratch rebuilds → {:.1}x less planning time",
        m_delta.iterations,
        m_delta.plan.delta_patches,
        m_delta.plan.full_rebuilds,
        m_delta.plan.units_reused,
        t_delta * 1e3,
        t_scratch * 1e3,
        t_scratch / t_delta.max(1e-9),
    );
}

/// The mask representation itself: the same sparse-frontier BFS driven by
/// the legacy dense `Vec<bool>` frontier (per-round mask conversion, full
/// mask re-scan in the planner, dense recount) vs the native hierarchical
/// mask + driver-supplied word deltas. Simulated results and event
/// accounting are bit-identical — only the planner's host work changes —
/// and the delta path must popcount fewer mask words and spend less host
/// planning time.
fn frontier_mask_case() {
    // A 240×240 grid: ~57.6 k vertices over ~900 mask words, diameter
    // ~478 — hundreds of rounds whose thin wavefront touches a handful of
    // words each, so per-round full mask re-scans are pure waste.
    let g = grid(240, 240);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");

    let dense_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        bfs_rounds_dense(&mut exec, spec, n)
    };
    let mask_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        bfs_rounds_on(&mut exec, spec, n, true)
    };
    let (d_dense, m_dense) = dense_run();
    let (d_mask, m_mask) = mask_run();

    assert_eq!(d_dense, d_mask, "the representation must not change labels");
    // Everything simulated is bit-identical; only the host-side planning
    // counters (how activity was derived) may differ between the paths.
    let strip_plan = |m: &graphr_core::Metrics| {
        let mut m = m.clone();
        m.plan = graphr_core::metrics::PlanCounters::default();
        m
    };
    assert_eq!(
        strip_plan(&m_dense),
        strip_plan(&m_mask),
        "metrics must be bit-identical modulo plan counters"
    );
    assert!(
        m_mask.plan.delta_words > 0,
        "the mask path must actually hand deltas to the planner"
    );
    assert!(
        m_mask.plan.mask_words < m_dense.plan.mask_words,
        "driver deltas must popcount fewer mask words: {} vs {}",
        m_mask.plan.mask_words,
        m_dense.plan.mask_words
    );

    let t_dense = best_of(5, || {
        std::time::Duration::from_secs_f64(dense_run().1.plan.time.as_secs())
    });
    let t_mask = best_of(5, || {
        std::time::Duration::from_secs_f64(mask_run().1.plan.time.as_secs())
    });
    assert!(
        t_mask < t_dense,
        "delta planning must cost less host time than full mask re-scans: {:.3} ms vs {:.3} ms",
        t_mask * 1e3,
        t_dense * 1e3
    );
    println!(
        "  frontier masks (240x240 grid bfs, {} rounds): dense driver {} mask words / planning {:.3} ms, delta driver {} mask words + {} delta words / planning {:.3} ms → {:.1}x less planning time, {} summary skips",
        m_mask.iterations,
        m_dense.plan.mask_words,
        t_dense * 1e3,
        m_mask.plan.mask_words,
        m_mask.plan.delta_words,
        t_mask * 1e3,
        t_dense / t_mask.max(1e-9),
        m_dense.plan.summary_skips,
    );
}

/// The serve layer's fusion win: K=16 co-located BFS queries on the
/// 240×240 grid advanced together as frontier lanes of one machine
/// execution vs run one at a time. Every lane's labels and attribution
/// row are bit-identical to its independent run (asserted), but the
/// fused wave plans the *union* frontier once per round — one plan and
/// one scan of the shared edge stream instead of sixteen — so it must
/// stream strictly fewer total edges and spend strictly less host
/// planning time than the sequential sum.
fn fused_wave_case() {
    use graphr_core::sim::{run_bfs_lanes_with, run_bfs_with, LaneTraversalOptions};

    let g = grid(240, 240);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    // Sixteen sources spread along the first row: co-located enough that
    // the sixteen wavefronts overlap almost immediately.
    let sources: Vec<u32> = (0..16u32).map(|i| i * 3).collect();
    let opts = LaneTraversalOptions::new(sources.clone());

    let fused_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, opts.spec);
        run_bfs_lanes_with(&g, &mut exec, &opts).expect("fused wave")
    };
    let solo_runs = || {
        sources
            .iter()
            .map(|&source| {
                let mut exec = StreamingExecutor::new(&tiled, &config, opts.spec);
                run_bfs_with(
                    &g,
                    &mut exec,
                    &TraversalOptions {
                        source,
                        ..TraversalOptions::default()
                    },
                )
                .expect("solo run")
            })
            .collect::<Vec<_>>()
    };

    let fused = fused_run();
    let solos = solo_runs();
    for (q, solo) in solos.iter().enumerate() {
        assert_eq!(
            fused.distances[q], solo.distances,
            "lane {q} must match its independent run"
        );
        assert_eq!(
            fused.metrics.lanes[q], solo.metrics.lanes[0],
            "lane {q} attribution must match its independent run"
        );
    }
    let solo_bytes: u64 = solos.iter().map(|s| s.metrics.events.bytes_streamed).sum();
    assert!(
        fused.metrics.events.bytes_streamed < solo_bytes,
        "the fused wave must stream fewer edges than the sequential sum: {} vs {} bytes",
        fused.metrics.events.bytes_streamed,
        solo_bytes
    );

    let t_fused_plan = best_of(2, || {
        std::time::Duration::from_secs_f64(fused_run().metrics.plan.time.as_secs())
    });
    let t_solo_plan = best_of(2, || {
        std::time::Duration::from_secs_f64(
            solo_runs()
                .iter()
                .map(|s| s.metrics.plan.time.as_secs())
                .sum(),
        )
    });
    assert!(
        t_fused_plan < t_solo_plan,
        "one union plan per round must beat sixteen: {:.3} ms vs {:.3} ms",
        t_fused_plan * 1e3,
        t_solo_plan * 1e3
    );
    println!(
        "  fused wave (240x240 grid, 16-lane bfs, {} rounds): {:.1} MiB streamed vs {:.1} MiB sequential ({:.1}x less), planning {:.3} ms vs {:.3} ms ({:.1}x less)",
        fused.metrics.iterations,
        fused.metrics.events.bytes_streamed as f64 / (1024.0 * 1024.0),
        solo_bytes as f64 / (1024.0 * 1024.0),
        solo_bytes as f64 / fused.metrics.events.bytes_streamed.max(1) as f64,
        t_fused_plan * 1e3,
        t_solo_plan * 1e3,
        t_solo_plan / t_fused_plan.max(1e-9),
    );
}

/// The telemetry tax: the same sparse-frontier BFS with a trace sink
/// attached vs without. Tracing is an observation — labels and the full
/// `Metrics` must be bit-identical either way (asserted) — and its host
/// cost is a handful of mutex-guarded pushes per iteration, reported here
/// as an overhead ratio.
fn tracing_overhead_case() {
    use graphr_core::trace::{TraceHandle, TraceSink};

    let g = grid(120, 120);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");

    let plain_run = || {
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        bfs_rounds_on(&mut exec, spec, n, true)
    };
    let traced_run = || {
        let sink = TraceSink::shared();
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        exec.set_trace(Some(TraceHandle::new(std::sync::Arc::clone(&sink))));
        let out = bfs_rounds_on(&mut exec, spec, n, true);
        (out, sink)
    };

    let (d_plain, m_plain) = plain_run();
    let ((d_traced, m_traced), sink) = traced_run();
    assert_eq!(d_plain, d_traced, "tracing must not change labels");
    assert_eq!(
        m_plain, m_traced,
        "tracing must not change Metrics — it only observes"
    );
    assert!(!sink.is_empty(), "the sink must have seen the run");

    let t_plain = best_of(3, || {
        let start = Instant::now();
        let _ = plain_run();
        start.elapsed()
    });
    let t_traced = best_of(3, || {
        let start = Instant::now();
        let _ = traced_run();
        start.elapsed()
    });
    // Host timing is noisy; only the absurd direction would indicate a
    // bug (tracing making the *untraced* run look slower than 2x).
    assert!(
        t_plain <= t_traced * 2.0,
        "untraced runs can't cost 2x a traced run: {:.3} ms vs {:.3} ms",
        t_plain * 1e3,
        t_traced * 1e3
    );
    println!(
        "  tracing overhead (120x120 grid bfs, {} rounds, {} events): plain {:.3} ms vs traced {:.3} ms → {:.2}x",
        m_traced.iterations,
        sink.len(),
        t_plain * 1e3,
        t_traced * 1e3,
        t_traced / t_plain.max(1e-9),
    );
}

/// The same sparse-frontier BFS on a simulated 4-node cluster: the
/// frontier-delta exchange ships only the properties each round updated,
/// so the interconnect traffic is a fraction of the dense `|V| × 2`-byte
/// all-gather the legacy multi-node estimate assumes every round.
fn cluster_sparse_frontier_case() {
    let g = grid(120, 120);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");

    let (d_single, m_single) = bfs_rounds(&tiled, &config, true);
    let mut cluster = ClusterExecutor::new(&tiled, &config, spec, MultiNodeConfig::pcie_cluster(4));
    let (d_cluster, m_cluster) = bfs_rounds_on(&mut cluster, spec, n, true);
    assert_eq!(d_single, d_cluster, "partitioning must not change labels");
    assert_eq!(
        m_single.events, m_cluster.events,
        "summed per-node events must equal the single-node scan"
    );

    let dense = MultiNodeEstimate::dense_exchange_bytes(n, m_cluster.iterations);
    assert!(
        m_cluster.net.bytes_exchanged < dense,
        "frontier-delta exchange must beat the dense all-gather: {} vs {} bytes",
        m_cluster.net.bytes_exchanged,
        dense
    );
    assert!(m_cluster.net.bytes_exchanged > 0);
    println!(
        "  cluster bfs (120x120 grid, 4 nodes, {} rounds): {:.1} KiB exchanged vs {:.1} KiB dense all-gather ({:.1}x less), exchange {} of cluster total {}",
        m_cluster.iterations,
        m_cluster.net.bytes_exchanged as f64 / 1024.0,
        dense as f64 / 1024.0,
        dense as f64 / m_cluster.net.bytes_exchanged.max(1) as f64,
        m_cluster.net.time,
        m_cluster.net.overlapped,
    );
}

/// The same sparse-frontier BFS in the out-of-core regime: every round's
/// plan becomes an `IoPlan`, so pruned rounds load only the frontier's
/// spans from disk instead of restreaming the whole ordered edge list —
/// enough to flip a disk-bound deployment back to compute-bound.
fn out_of_core_sparse_frontier_case(threads: usize) {
    // A 240×240 grid on an NVMe drive: the legacy model restreams ~1.3 MiB
    // per round and is hopelessly disk-bound; the pruned plan loads only
    // the wavefront's spans, whose transfer (plus the block request) costs
    // less than the round's compute.
    let g = grid(240, 240);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let disk = DiskModel::nvme();

    let mut serial = StreamingExecutor::new(&tiled, &config, spec).with_disk(disk);
    let (d_serial, m_serial) = bfs_rounds_on(&mut serial, spec, n, true);
    let mut parallel =
        ParallelExecutor::with_threads(&tiled, &config, spec, threads).with_disk(disk);
    let (d_parallel, m_parallel) = bfs_rounds_on(&mut parallel, spec, n, true);
    assert_eq!(d_serial, d_parallel, "disk model must not change labels");
    assert_eq!(
        m_serial, m_parallel,
        "serial and parallel disk metrics must be bit-identical"
    );

    // Pruned iterations must load strictly fewer bytes than restreaming
    // the whole ordered edge list every round...
    let restream_bytes = tiled.total_edges() as u64 * BYTES_PER_EDGE * m_serial.iterations as u64;
    assert!(
        m_serial.disk.bytes_loaded < restream_bytes,
        "pruned rounds must beat the full restream: {} vs {} bytes",
        m_serial.disk.bytes_loaded,
        restream_bytes
    );
    // ...and the per-iteration overlapped total must beat the legacy
    // aggregate estimate, which assumes exactly that restream...
    let legacy = estimate_out_of_core(&tiled, &m_serial, &disk);
    assert!(
        m_serial.disk.overlapped < legacy.overlapped_time,
        "plan-aware overlap must beat the aggregate estimate: {} vs {}",
        m_serial.disk.overlapped,
        legacy.overlapped_time
    );
    // ...flipping the deployment's regime: legacy says the drive bounds
    // it, the plan-aware accounting says the accelerator does.
    assert!(legacy.is_disk_bound(), "full restream should swamp an NVMe");
    assert!(
        !m_serial.disk.is_disk_bound(m_serial.total_time()),
        "pruned rounds should flip the deployment back to compute-bound: disk {} vs compute {}",
        m_serial.disk.time,
        m_serial.total_time()
    );
    // The bottleneck attribution must agree — and flip with the storage
    // regime: the same pruned BFS is compute-bound in-core and on NVMe
    // but disk-bound on the SATA-era drive (what `graphr-run`'s `bound:`
    // row shows between `--disk none` and `--disk sata`).
    {
        use graphr_core::analyze::{BottleneckReport, Resource};
        let (_, m_incore) = bfs_rounds(&tiled, &config, true);
        let mut sata =
            StreamingExecutor::new(&tiled, &config, spec).with_disk(DiskModel::sata_ssd());
        let (_, m_sata) = bfs_rounds_on(&mut sata, spec, n, true);
        assert_eq!(
            BottleneckReport::classify(&m_incore).bound,
            Resource::Compute,
            "in-core BFS must classify compute-bound"
        );
        assert_eq!(
            BottleneckReport::classify(&m_serial).bound,
            Resource::Compute,
            "pruned NVMe BFS must classify compute-bound"
        );
        assert_eq!(
            BottleneckReport::classify(&m_sata).bound,
            Resource::Disk,
            "pruned SATA BFS must classify disk-bound: {}",
            BottleneckReport::classify(&m_sata).summary()
        );
    }
    println!(
        "  out-of-core bfs (240x240 grid, NVMe, {} rounds): {:.1} MiB loaded vs {:.1} MiB restreamed ({:.1}x less), plan-aware total {} vs legacy estimate {} → {}-bound instead of {}-bound",
        m_serial.iterations,
        m_serial.disk.bytes_loaded as f64 / (1024.0 * 1024.0),
        restream_bytes as f64 / (1024.0 * 1024.0),
        restream_bytes as f64 / m_serial.disk.bytes_loaded.max(1) as f64,
        m_serial.disk.overlapped,
        legacy.overlapped_time,
        if m_serial.disk.is_disk_bound(m_serial.total_time()) {
            "disk"
        } else {
            "compute"
        },
        if legacy.is_disk_bound() { "disk" } else { "compute" },
    );
}

/// The pipelined I/O lane (`--disk nvme-pipe`): cross-iteration prefetch
/// must change *when* bytes move, never *what* the run computes or how
/// the full pricing reads. Asserted here on the same 240×240-grid NVMe
/// BFS as above, plus a static-frontier replay where the read-ahead
/// window structure is controlled exactly.
fn pipelined_prefetch_case(threads: usize) {
    use graphr_core::analyze::{BottleneckReport, Resource};
    use graphr_core::exec::PlanSkeleton;
    use graphr_core::outofcore::DiskAccountant;
    use graphr_core::Metrics;
    use graphr_units::Nanos;

    let g = grid(240, 240);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry");
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let off = DiskModel::nvme();
    let on = off.with_prefetch();

    // Sparse BFS, prefetch off vs on, across all three engines: labels,
    // events, and every prefetch-independent disk counter bit-identical;
    // the read-ahead is active and the compute lane waits strictly less
    // on the drive without the overlapped wall ever regressing.
    let mut serial_off = StreamingExecutor::new(&tiled, &config, spec).with_disk(off);
    let (d_off, m_off) = bfs_rounds_on(&mut serial_off, spec, n, true);
    let mut serial_on = StreamingExecutor::new(&tiled, &config, spec).with_disk(on);
    let (d_on, m_on) = bfs_rounds_on(&mut serial_on, spec, n, true);
    assert_eq!(d_off, d_on, "prefetch must not change labels");
    assert_eq!(m_off.events, m_on.events, "prefetch must not change events");
    assert_eq!(
        m_off.disk.sans_prefetch(),
        m_on.disk.sans_prefetch(),
        "full pricing must be bit-identical with prefetch on vs off"
    );
    assert!(m_on.disk.bytes_prefetched > 0, "read-ahead must be active");
    assert!(m_on.disk.prefetch_hits > 0, "read-ahead must be consumed");
    assert!(
        m_on.disk.demand_time < m_off.disk.demand_time,
        "the compute lane must wait strictly less on the drive: {} vs {}",
        m_on.disk.demand_time,
        m_off.disk.demand_time
    );
    assert!(
        m_on.disk.overlapped <= m_off.disk.overlapped,
        "pipelining must never raise the per-iteration overlap total"
    );
    let mut parallel_on =
        ParallelExecutor::with_threads(&tiled, &config, spec, threads).with_disk(on);
    let (d_par, m_par) = bfs_rounds_on(&mut parallel_on, spec, n, true);
    let mut cluster_on =
        ClusterExecutor::new(&tiled, &config, spec, MultiNodeConfig::pcie_cluster(1)).with_disk(on);
    let (d_clu, m_clu) = bfs_rounds_on(&mut cluster_on, spec, n, true);
    assert_eq!(d_on, d_par, "parallel prefetch must not change labels");
    assert_eq!(
        d_on, d_clu,
        "one-node cluster prefetch must not change labels"
    );
    assert_eq!(
        m_on, m_par,
        "serial and parallel prefetched metrics must be bit-identical"
    );
    assert_eq!(
        m_on.disk, m_clu.disk,
        "one-node cluster prefetched disk counters must be bit-identical"
    );

    // A dense traversal restreams everything every round: there is no
    // idle tail to fund reads ahead, and the capped demand pricing keeps
    // the run inside the legacy aggregate bound.
    let mut dense_on = StreamingExecutor::new(&tiled, &config, spec).with_disk(on);
    let (_, m_dense) = bfs_rounds_on(&mut dense_on, spec, n, false);
    let legacy = estimate_out_of_core(&tiled, &m_dense, &off);
    assert!(
        m_dense.disk.overlapped <= legacy.overlapped_time,
        "a dense prefetched run must stay within the legacy bound: {} vs {}",
        m_dense.disk.overlapped,
        legacy.overlapped_time
    );

    // A static frontier replay with alternating per-round compute — the
    // bursty profile pipelined I/O exists for. The graph is laid out in
    // five on-disk blocks; the replayed plan touches one. Heavy rounds
    // leave an idle I/O tail that reads the whole next round ahead, so
    // every other round's demand stream vanishes: the per-iteration
    // overlap model pays the drive every round, the pipelined lane every
    // second round — a strict wall win the bottleneck report attributes
    // (the deployment flips from disk-bound to compute-bound), with
    // nothing read ahead in vain.
    let blocked = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .block_vertices(56 * 256)
        .build()
        .expect("valid blocked geometry");
    let btiled = TiledGraph::preprocess(&g, &blocked).expect("grid tiles");
    let skeleton = PlanSkeleton::build(&btiled);
    let mut mask = FrontierMask::new(n);
    for v in 2400..2880 {
        mask.set(v);
    }
    let plan = skeleton.pruned_plan(&btiled, &mask);
    let rounds = 40usize;

    // One probe window prices the replayed plan's demand stream.
    let mut probe = Metrics::new();
    let mut acc = DiskAccountant::new(off, Nanos::ZERO);
    acc.charge_scan(&btiled, &plan, &mut probe);
    probe.elapsed += Nanos::new(1.0);
    let demand = acc.commit(&mut probe).demand;
    let heavy = demand * 1.3;
    let light = demand * 0.3;

    let replay = |model: DiskModel| -> Metrics {
        let mut m = Metrics::new();
        let mut acc = DiskAccountant::new(model, Nanos::ZERO);
        for round in 0..rounds {
            acc.charge_scan(&btiled, &plan, &mut m);
            m.elapsed += if round % 2 == 0 { heavy } else { light };
            acc.commit(&mut m);
        }
        m.iterations = rounds;
        m
    };
    let r_off = replay(off);
    let r_on = replay(on);
    r_on.validate().expect("prefetch invariants must hold");
    assert_eq!(
        r_off.disk.sans_prefetch(),
        r_on.disk.sans_prefetch(),
        "replay full pricing must be bit-identical with prefetch on vs off"
    );
    assert_eq!(
        r_on.disk.prefetch_wasted, 0,
        "a static frontier replay must waste nothing"
    );
    assert!(
        r_on.disk.overlapped < r_off.disk.overlapped,
        "the pipelined replay must strictly beat the per-iteration overlap model: {} vs {}",
        r_on.disk.overlapped,
        r_off.disk.overlapped
    );
    let b_off = BottleneckReport::classify(&r_off);
    let b_on = BottleneckReport::classify(&r_on);
    assert_eq!(
        b_off.bound,
        Resource::Disk,
        "the unpipelined replay must classify disk-bound: {}",
        b_off.summary()
    );
    assert_eq!(
        b_on.bound,
        Resource::Compute,
        "prefetch must flip the replay to compute-bound: {}",
        b_on.summary()
    );
    println!(
        "  pipelined i/o (240x240 grid, NVMe): bfs demand {} vs {} off ({:.1} KiB ahead, {} hits); replay wall {} vs {} off ({:.2}x, {}-bound -> {}-bound, 0 wasted)",
        m_on.disk.demand_time,
        m_off.disk.demand_time,
        m_on.disk.bytes_prefetched as f64 / 1024.0,
        m_on.disk.prefetch_hits,
        r_on.disk.overlapped,
        r_off.disk.overlapped,
        r_off.disk.overlapped.as_nanos() / r_on.disk.overlapped.as_nanos(),
        b_off.bound.name(),
        b_on.bound.name(),
    );
}
