//! Regenerates Table 2 (vertex programs and mapping patterns).

fn main() {
    println!("{}", graphr_bench::figures::table2());
}
