//! Criterion microbenchmarks of the §3.4 preprocessing: global-order-ID
//! computation and full edge-list tiling (the once-per-graph software
//! step of Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphr_core::preprocess::TileOrder;
use graphr_core::{GraphRConfig, TiledGraph};
use graphr_graph::generators::rmat::Rmat;

fn preprocess_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    let order = TileOrder::new(1 << 20, 8, 4096, 1 << 20).unwrap();
    group.bench_function("global_order_id", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % (1 << 20);
            std::hint::black_box(order.global_id(i, (i * 31) % (1 << 20)))
        });
    });
    let config = GraphRConfig::default();
    for edges in [10_000usize, 100_000] {
        let graph = Rmat::new(edges / 8, edges).seed(1).generate();
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("tile_graph", edges), &graph, |b, graph| {
            b.iter(|| TiledGraph::preprocess(std::hint::black_box(graph), &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, preprocess_benches);
criterion_main!(benches);
