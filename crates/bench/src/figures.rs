//! Figure/table generators: one function per paper artefact, each
//! returning structured results plus a rendered plain-text rendition of
//! the same rows/series the paper plots.

use graphr_core::program::applications;
use graphr_graph::analysis::GraphProfile;
use graphr_graph::DatasetSpec;
use graphr_platforms::architecture_comparison;
use graphr_platforms::specs::{CpuSpec, GpuSpec};
use graphr_units::GeoMean;

use crate::apps::{run_app, App, AppRun};
use crate::context::ExperimentContext;
use crate::report::{ratio, render_table};

/// The six directed datasets of Figures 17/18, in the paper's order.
#[must_use]
pub fn directed_specs() -> Vec<DatasetSpec> {
    DatasetSpec::directed_catalog()
}

/// Runs the full 25-cell grid of Figures 17/18 (4 apps × 6 directed
/// datasets + CF on Netflix).
#[must_use]
pub fn cpu_grid(ctx: &ExperimentContext) -> Vec<AppRun> {
    let mut runs = Vec::with_capacity(25);
    for app in App::directed_apps() {
        for spec in directed_specs() {
            runs.push(run_app(ctx, app, &spec));
        }
    }
    runs.push(run_app(ctx, App::Cf, &DatasetSpec::netflix()));
    runs
}

fn grid_table(runs: &[AppRun], title: &str, cell: impl Fn(&AppRun) -> f64) -> String {
    let tags: Vec<&str> = directed_specs().iter().map(|s| s.tag).collect();
    let mut header = vec!["app"];
    header.extend(tags.iter().copied());
    let mut rows = Vec::new();
    let mut geo = GeoMean::new();
    for app in App::directed_apps() {
        let mut row = vec![app.name().to_string()];
        for tag in &tags {
            let run = runs
                .iter()
                .find(|r| r.app == app && r.dataset == *tag)
                .expect("grid contains every cell");
            let v = cell(run);
            geo.observe(v);
            row.push(ratio(v));
        }
        rows.push(row);
    }
    let cf = runs
        .iter()
        .find(|r| r.app == App::Cf)
        .expect("grid contains CF");
    let v = cell(cf);
    geo.observe(v);
    let mut cf_row = vec!["CF (NF)".to_string(), ratio(v)];
    cf_row.resize(header.len(), String::new());
    rows.push(cf_row);
    let mut gm_row = vec![
        "geomean".to_string(),
        ratio(geo.value().expect("grid is non-empty")),
    ];
    gm_row.resize(header.len(), String::new());
    rows.push(gm_row);
    render_table(title, &header, &rows)
}

/// Figure 17: GraphR speedup over the CPU platform, full grid + geomean.
#[must_use]
pub fn figure17(ctx: &ExperimentContext) -> (Vec<AppRun>, String) {
    let runs = cpu_grid(ctx);
    let text = grid_table(
        &runs,
        "Figure 17: GraphR speedup over CPU (GridGraph, dual Xeon E5-2630 v3)",
        AppRun::speedup_vs_cpu,
    );
    (runs, text)
}

/// Figure 18: GraphR energy saving over the CPU platform.
#[must_use]
pub fn figure18(ctx: &ExperimentContext) -> (Vec<AppRun>, String) {
    let runs = cpu_grid(ctx);
    let text = grid_table(
        &runs,
        "Figure 18: GraphR energy saving over CPU",
        AppRun::energy_saving_vs_cpu,
    );
    (runs, text)
}

/// Figure 19: performance and energy vs the GPU (PR and SSSP on
/// LiveJournal, CF on Netflix), normalised to the CPU as in the paper.
#[must_use]
pub fn figure19(ctx: &ExperimentContext) -> (Vec<AppRun>, String) {
    let lj = DatasetSpec::live_journal();
    let runs = vec![
        run_app(ctx, App::PageRank, &lj),
        run_app(ctx, App::Sssp, &lj),
        run_app(ctx, App::Cf, &DatasetSpec::netflix()),
    ];
    let header = [
        "app",
        "GPU perf",
        "GraphR perf",
        "GraphR/GPU",
        "GPU energy",
        "GraphR energy",
        "GraphR/GPU",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let label = if r.app == App::Cf {
                "CF (NF)".to_string()
            } else {
                format!("{} (LJ)", r.app.name())
            };
            vec![
                label,
                ratio(r.cpu.time.ratio(r.gpu.time)),
                ratio(r.speedup_vs_cpu()),
                ratio(r.gpu.time.ratio(r.graphr.time)),
                ratio(r.cpu.energy.ratio(r.gpu.energy)),
                ratio(r.energy_saving_vs_cpu()),
                ratio(r.gpu.energy.ratio(r.graphr.energy)),
            ]
        })
        .collect();
    let text = render_table(
        "Figure 19: GraphR vs GPU (Tesla K40c), normalised to CPU",
        &header,
        &rows,
    );
    (runs, text)
}

/// Figure 20: performance and energy vs PIM (Tesseract) — PR and SSSP on
/// WikiVote, Amazon and LiveJournal, normalised to the CPU.
#[must_use]
pub fn figure20(ctx: &ExperimentContext) -> (Vec<AppRun>, String) {
    let specs = [
        DatasetSpec::wiki_vote(),
        DatasetSpec::amazon(),
        DatasetSpec::live_journal(),
    ];
    let mut runs = Vec::new();
    for app in [App::PageRank, App::Sssp] {
        for spec in &specs {
            runs.push(run_app(ctx, app, spec));
        }
    }
    let header = [
        "app",
        "dataset",
        "PIM perf",
        "GraphR perf",
        "GraphR/PIM",
        "PIM energy",
        "GraphR energy",
        "GraphR/PIM",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.app.name().to_string(),
                r.dataset.to_string(),
                ratio(r.cpu.time.ratio(r.pim.time)),
                ratio(r.speedup_vs_cpu()),
                ratio(r.pim.time.ratio(r.graphr.time)),
                ratio(r.cpu.energy.ratio(r.pim.energy)),
                ratio(r.energy_saving_vs_cpu()),
                ratio(r.pim.energy.ratio(r.graphr.energy)),
            ]
        })
        .collect();
    let text = render_table(
        "Figure 20: GraphR vs PIM (Tesseract-style), normalised to CPU",
        &header,
        &rows,
    );
    (runs, text)
}

/// Figure 21: sensitivity to sparsity — PR and SSSP speedup/energy saving
/// against dataset density across WV, SD, AZ, WG, LJ.
#[must_use]
pub fn figure21(ctx: &ExperimentContext) -> (Vec<AppRun>, String) {
    let specs = [
        DatasetSpec::wiki_vote(),
        DatasetSpec::slashdot(),
        DatasetSpec::amazon(),
        DatasetSpec::web_google(),
        DatasetSpec::live_journal(),
    ];
    let mut runs = Vec::new();
    let mut rows = Vec::new();
    for spec in &specs {
        let graph = ctx.graph(spec);
        let density = graph.density();
        let pr = run_app(ctx, App::PageRank, spec);
        let ss = run_app(ctx, App::Sssp, spec);
        rows.push(vec![
            spec.tag.to_string(),
            format!("{density:.2e}"),
            ratio(pr.speedup_vs_cpu()),
            ratio(ss.speedup_vs_cpu()),
            ratio(pr.energy_saving_vs_cpu()),
            ratio(ss.energy_saving_vs_cpu()),
        ]);
        runs.push(pr);
        runs.push(ss);
    }
    let header = [
        "dataset",
        "density",
        "PR speedup",
        "SSSP speedup",
        "PR energy",
        "SSSP energy",
    ];
    let text = render_table(
        "Figure 21: GraphR performance/energy saving vs dataset density",
        &header,
        &rows,
    );
    (runs, text)
}

/// Table 1 (plus the Table 4/5 machine specs): the qualitative
/// architecture comparison.
#[must_use]
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = architecture_comparison()
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.process_edge.to_string(),
                r.reduce.to_string(),
                r.processing_model.to_string(),
                r.memory_access.to_string(),
                r.generality.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table 1: Comparison of architectures for graph processing",
        &[
            "arch",
            "processEdge",
            "reduce",
            "model",
            "memory access",
            "generality",
        ],
        &rows,
    );
    let cpu = CpuSpec::table4();
    let gpu = GpuSpec::table5();
    out.push_str(&render_table(
        "Table 4: CPU platform",
        &["field", "value"],
        &[
            vec!["CPU".into(), cpu.model.into()],
            vec![
                "cores".into(),
                format!(
                    "{} x {} @ {} GHz",
                    cpu.sockets, cpu.cores_per_socket, cpu.freq_ghz
                ),
            ],
            vec!["threads".into(), cpu.threads.to_string()],
            vec!["L3".into(), format!("{} MB", cpu.l3_mib)],
            vec!["memory".into(), format!("{} GB", cpu.memory_gib)],
        ],
    ));
    out.push_str(&render_table(
        "Table 5: GPU platform",
        &["field", "value"],
        &[
            vec!["card".into(), gpu.model.into()],
            vec!["architecture".into(), gpu.architecture.into()],
            vec!["CUDA cores".into(), gpu.cuda_cores.to_string()],
            vec!["base clock".into(), format!("{} MHz", gpu.base_clock_mhz)],
            vec![
                "memory".into(),
                format!(
                    "{} GB GDDR5, {} GB/s",
                    gpu.memory_gib, gpu.memory_bandwidth_gbps
                ),
            ],
        ],
    ));
    out
}

/// Table 2: the application catalog (vertex programs and patterns).
#[must_use]
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = applications()
        .iter()
        .map(|a| {
            vec![
                a.name.to_string(),
                a.property.to_string(),
                a.process_edge.to_string(),
                a.reduce.to_string(),
                if a.active_list {
                    "Required"
                } else {
                    "Not Required"
                }
                .to_string(),
                format!("{:?}", a.pattern),
            ]
        })
        .collect();
    render_table(
        "Table 2: Property and operations of applications in GraphR",
        &[
            "app",
            "property",
            "processEdge()",
            "reduce()",
            "active list",
            "pattern",
        ],
        &rows,
    )
}

/// Table 3: the dataset catalog, full-scale and as generated at the
/// context's scale (with measured structural properties of the clones).
#[must_use]
pub fn table3(ctx: &ExperimentContext) -> String {
    let mut rows = Vec::new();
    for spec in DatasetSpec::catalog() {
        let graph = ctx.graph(&spec);
        let profile = GraphProfile::of(&graph);
        rows.push(vec![
            spec.name.to_string(),
            spec.tag.to_string(),
            spec.vertices.to_string(),
            spec.edges.to_string(),
            profile.num_vertices.to_string(),
            profile.num_edges.to_string(),
            format!("{:.2e}", profile.density),
            format!("{}", profile.max_out_degree),
        ]);
    }
    render_table(
        &format!(
            "Table 3: Graph datasets (clones generated at scale {:.5})",
            ctx.scale()
        ),
        &[
            "dataset",
            "tag",
            "paper |V|",
            "paper |E|",
            "gen |V|",
            "gen |E|",
            "density",
            "max deg",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_running_simulations() {
        let t1 = table1();
        assert!(t1.contains("GraphR"));
        assert!(t1.contains("ReRAM crossbar"));
        assert!(t1.contains("E5-2630"));
        let t2 = table2();
        assert!(t2.contains("PageRank"));
        assert!(t2.contains("min(V.prop, E.value)") || t2.contains("min(V.prop,"));
    }

    #[test]
    fn table3_lists_all_seven_datasets() {
        let ctx = ExperimentContext::with_scale(0.001);
        let t3 = table3(&ctx);
        for tag in ["WV", "SD", "AZ", "WG", "LJ", "OK", "NF"] {
            assert!(t3.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn figure21_produces_five_density_rows() {
        let ctx = ExperimentContext::with_scale(0.001);
        let (runs, text) = figure21(&ctx);
        assert_eq!(runs.len(), 10);
        assert!(text.contains("density"));
        assert!(text.contains("WV"));
    }
}
