//! Shared experiment context: dataset scaling/caching, the standard
//! accelerator configuration, and scale-consistent platform models.

use std::collections::HashMap;
use std::sync::Arc;

use graphr_core::GraphRConfig;
use graphr_graph::{DatasetSpec, EdgeList};
use graphr_platforms::{CpuModel, GpuModel, PimModel};
use parking_lot::Mutex;

/// Environment variable overriding the dataset scale.
pub const SCALE_ENV: &str = "GRAPHR_SCALE";

/// Default linear dataset scale (1/32 of Table 3 sizes).
pub const DEFAULT_SCALE: f64 = 1.0 / 32.0;

/// Shared state for one harness process.
pub struct ExperimentContext {
    scale: f64,
    config: GraphRConfig,
    cache: Mutex<HashMap<&'static str, Arc<EdgeList>>>,
}

impl ExperimentContext {
    /// Creates a context at the scale given by `GRAPHR_SCALE` (default
    /// 1/32) with the paper's §5.2 accelerator configuration.
    #[must_use]
    pub fn from_env() -> Self {
        let scale = std::env::var(SCALE_ENV)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0 && *s <= 1.0)
            .unwrap_or(DEFAULT_SCALE);
        ExperimentContext::with_scale(scale)
    }

    /// Creates a context at an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    #[must_use]
    pub fn with_scale(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        ExperimentContext {
            scale,
            config: GraphRConfig::default(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The linear dataset scale in effect.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The accelerator configuration (paper §5.2 evaluation point).
    #[must_use]
    pub fn config(&self) -> &GraphRConfig {
        &self.config
    }

    /// A mutable copy of the configuration for ablations.
    #[must_use]
    pub fn config_clone(&self) -> GraphRConfig {
        self.config.clone()
    }

    /// The scaled clone of a dataset, cached per tag.
    #[must_use]
    pub fn graph(&self, spec: &DatasetSpec) -> Arc<EdgeList> {
        let mut cache = self.cache.lock();
        if let Some(g) = cache.get(spec.tag) {
            return Arc::clone(g);
        }
        let g = Arc::new(spec.generate(self.scale));
        cache.insert(spec.tag, Arc::clone(&g));
        g
    }

    /// The scaled bipartite split of a dataset (Netflix), if any.
    #[must_use]
    pub fn bipartite(&self, spec: &DatasetSpec) -> Option<(usize, usize)> {
        spec.scaled_bipartite(self.scale)
    }

    /// The CPU model with software overheads scaled to the dataset scale
    /// (see the crate docs for the rationale).
    #[must_use]
    pub fn cpu_model(&self) -> CpuModel {
        let mut m = CpuModel::paper_default();
        m.tuning.setup = m.tuning.setup * self.scale;
        m.tuning.per_iteration = m.tuning.per_iteration * self.scale;
        m
    }

    /// The GPU model with software overheads scaled.
    #[must_use]
    pub fn gpu_model(&self) -> GpuModel {
        let mut m = GpuModel::paper_default();
        m.tuning.setup = m.tuning.setup * self.scale;
        m.tuning.per_iteration = m.tuning.per_iteration * self.scale;
        m
    }

    /// The PIM model with software overheads scaled.
    #[must_use]
    pub fn pim_model(&self) -> PimModel {
        let mut m = PimModel::paper_default();
        m.tuning.setup = m.tuning.setup * self.scale;
        m.tuning.per_iteration = m.tuning.per_iteration * self.scale;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_and_override() {
        let ctx = ExperimentContext::with_scale(0.01);
        assert_eq!(ctx.scale(), 0.01);
    }

    #[test]
    fn graph_cache_returns_same_instance() {
        let ctx = ExperimentContext::with_scale(0.002);
        let spec = DatasetSpec::wiki_vote();
        let a = ctx.graph(&spec);
        let b = ctx.graph(&spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_edges(), spec.scaled_dimensions(0.002).1);
    }

    #[test]
    fn platform_overheads_scale() {
        let full = ExperimentContext::with_scale(1.0);
        let small = ExperimentContext::with_scale(0.1);
        assert!(
            small.cpu_model().tuning.setup < full.cpu_model().tuning.setup,
            "setup overhead must shrink with scale"
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_panics() {
        let _ = ExperimentContext::with_scale(0.0);
    }
}
