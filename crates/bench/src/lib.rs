//! Experiment harness: regenerates every table and figure of the GraphR
//! evaluation (§5), plus the ablations called out in DESIGN.md.
//!
//! Each `cargo bench` target under `benches/` is a thin wrapper over this
//! library:
//!
//! | target | paper artefact |
//! |---|---|
//! | `table1_comparison` | Table 1 (+ Tables 4/5 machine specs) |
//! | `table2_applications` | Table 2 |
//! | `table3_datasets` | Table 3 |
//! | `fig17_speedup_cpu` | Figure 17 |
//! | `fig18_energy_cpu` | Figure 18 |
//! | `fig19_gpu` | Figure 19 |
//! | `fig20_pim` | Figure 20 |
//! | `fig21_sparsity` | Figure 21 |
//! | `ablation_*` | DESIGN.md §4 design-choice studies |
//! | `micro_*` | criterion microbenchmarks of the simulator itself |
//! | `perf_report` | `BENCH_micro.json` — the [`perf`] scenarios' tracked baseline |
//!
//! Scaling: datasets are generated at `GRAPHR_SCALE` (default 1/32) of
//! their Table 3 size, uniformly, which preserves mean degree and the
//! cross-dataset density ordering. Fixed software overheads in the platform
//! models scale by the same factor so overhead-to-work ratios — which
//! create the paper's extreme cases — survive scaling. Set
//! `GRAPHR_SCALE=1` to run the full-size datasets (needs tens of GB and
//! hours).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod apps;
pub mod context;
pub mod figures;
pub mod perf;
pub mod report;

pub use apps::{App, AppRun, PlatformNumbers};
pub use context::ExperimentContext;
