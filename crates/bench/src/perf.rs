//! Perf-baseline scenarios: the `micro_runtime` cases as deterministic,
//! structured measurements.
//!
//! Each scenario runs one of the runtime microbenchmark's workloads and
//! returns a [`ScenarioRow`] of simulated facts — bytes streamed from
//! memory ReRAM, bytes loaded from disk, bytes exchanged on the
//! interconnect, host planning time, the simulated total, and the
//! bottleneck classification — plus, for the serve scenario, the
//! simulated latency percentiles. The `perf_report` bench target writes
//! the rows to `BENCH_micro.json` (the tracked perf baseline CI
//! regenerates on every run); the `micro_runtime` target narrates the
//! same workloads with host timings and correctness assertions, sharing
//! the BFS drivers below so both harnesses measure the same loops.

use graphr_core::analyze::BottleneckReport;
use graphr_core::exec::mask::{FrontierDelta, FrontierMask};
use graphr_core::exec::{ScanEngine, StreamingExecutor};
use graphr_core::multinode::{ClusterExecutor, MultiNodeConfig};
use graphr_core::outofcore::DiskModel;
use graphr_core::sim::{run_bfs_lanes_with, LaneTraversalOptions, TraversalOptions};
use graphr_core::stats::Histogram;
use graphr_core::{GraphRConfig, Metrics, TiledGraph};
use graphr_graph::generators::structured::grid;
use graphr_graph::GraphHandle;
use graphr_runtime::{Job, JobSpec, ServeConfig, Server, Session};
use graphr_units::FixedSpec;

/// The small §5.2-derived geometry every micro scenario uses: 8×8
/// crossbars, 32 per GE, 4 GEs — big enough to exercise strip sharding,
/// small enough that a full BFS converges in milliseconds of host time.
#[must_use]
pub fn bench_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid bench geometry")
}

/// The BFS label format (its maximum is the "unreached" sentinel).
#[must_use]
pub fn bfs_spec() -> FixedSpec {
    FixedSpec::new(16, 0).expect("Q16.0 is valid")
}

/// The BFS iteration loop over any engine (serial or parallel, with or
/// without a disk model or cluster attached). `spec` must be the label
/// format the engine was built with. `pruned` selects frontier-pruned
/// plans patched by driver-supplied deltas; `false` runs every iteration
/// as a full scan.
pub fn bfs_rounds_on(
    exec: &mut dyn ScanEngine,
    spec: FixedSpec,
    n: usize,
    pruned: bool,
) -> (Vec<f64>, Metrics) {
    let inf = spec.max_value();
    let mut dist = vec![inf; n];
    dist[0] = 0.0;
    let mut active = FrontierMask::new(n);
    active.set(0);
    let mut delta: Option<FrontierDelta> = None;
    for _ in 0..n {
        let plan = if !pruned {
            exec.plan(None)
        } else if let Some(d) = &delta {
            exec.plan_with_delta(&active, d)
        } else {
            exec.plan(Some(&active))
        };
        let mut frontier = dist.clone();
        let mut updated = FrontierMask::new(n);
        exec.scan_add_op_planned(
            &plan,
            &|_w, _, _| 1.0,
            &|du, w| du + w,
            &dist,
            &active,
            &mut frontier,
            &mut updated,
        );
        exec.end_iteration();
        dist = frontier;
        delta = Some(FrontierDelta::between(&active, &updated));
        active = updated;
        if active.is_empty() {
            break;
        }
    }
    (dist, exec.take_metrics())
}

/// The legacy dense driver: frontier state lives in a `Vec<bool>`, so
/// every round converts it into a mask before planning (a full `O(|V|)`
/// re-scan for the planner to diff) and recounts it densely afterwards —
/// what every sim driver did before hierarchical masks became the native
/// representation. Kept as the baseline for the frontier-mask scenario.
pub fn bfs_rounds_dense(
    exec: &mut dyn ScanEngine,
    spec: FixedSpec,
    n: usize,
) -> (Vec<f64>, Metrics) {
    let inf = spec.max_value();
    let mut dist = vec![inf; n];
    dist[0] = 0.0;
    let mut active = vec![false; n];
    active[0] = true;
    for _ in 0..n {
        let mask = FrontierMask::from_slice(&active);
        let plan = exec.plan(Some(&mask));
        let mut frontier = dist.clone();
        let mut updated = FrontierMask::new(n);
        exec.scan_add_op_planned(
            &plan,
            &|_w, _, _| 1.0,
            &|du, w| du + w,
            &dist,
            &mask,
            &mut frontier,
            &mut updated,
        );
        exec.end_iteration();
        dist = frontier;
        active = updated.to_vec();
        if !active.iter().any(|&a| a) {
            break;
        }
    }
    (dist, exec.take_metrics())
}

/// The serve scenario's latency summary: admission counters plus the
/// simulated end-to-end latency percentiles (whole nanoseconds, exact —
/// see `graphr_core::stats::Histogram`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLatencySummary {
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Queries the admission controller rejected.
    pub rejected: u64,
    /// Fused waves the drain executed.
    pub waves: u64,
    /// Median simulated latency, ns.
    pub p50_ns: u64,
    /// 95th-percentile simulated latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile simulated latency, ns.
    pub p99_ns: u64,
    /// Worst simulated latency, ns.
    pub max_ns: u64,
}

impl ServeLatencySummary {
    fn from_latency(latency: &Histogram, admitted: u64, rejected: u64, waves: u64) -> Self {
        ServeLatencySummary {
            admitted,
            rejected,
            waves,
            p50_ns: latency.percentile(50),
            p95_ns: latency.percentile(95),
            p99_ns: latency.percentile(99),
            max_ns: latency.max(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"admitted\":{},\"rejected\":{},\"waves\":{},\"latency_ns\":{{\
             \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}}",
            self.admitted,
            self.rejected,
            self.waves,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns
        )
    }
}

/// One scenario's measured facts — the `BENCH_micro.json` row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (stable across runs; CI validates the full set).
    pub name: &'static str,
    /// Iterations the workload converged in.
    pub iterations: usize,
    /// Edge bytes streamed out of memory ReRAM.
    pub bytes_streamed: u64,
    /// Bytes loaded from the simulated disk (0 when in-core).
    pub bytes_loaded: u64,
    /// Property bytes exchanged on the simulated interconnect (0 when
    /// single-node).
    pub bytes_exchanged: u64,
    /// Host planning time, milliseconds (the one host-measured field —
    /// the perf baseline proper; everything else is simulated and
    /// deterministic).
    pub plan_time_ms: f64,
    /// Simulated total time, ns.
    pub sim_time_ns: f64,
    /// The run's effective wall-clock from
    /// [`BottleneckReport::classify`] — composed cluster elapsed,
    /// per-window overlapped disk total, or plain compute, whichever
    /// regime the run was in. This is the axis the prefetch scenarios
    /// compare on (pipelined I/O must never raise it).
    pub wall_ns: f64,
    /// Time the compute lane actually waited on the disk
    /// (`DiskCounters::demand_pressure`) — with prefetch on, the
    /// read-ahead absorbed the difference to the full pricing.
    pub demand_io_ns: f64,
    /// Bytes the `ScanDriver` read ahead on the I/O lane (0 with
    /// prefetch off or in-core).
    pub bytes_prefetched: u64,
    /// The bottleneck classification's dominant resource.
    pub bound: &'static str,
    /// Latency summary (serve scenario only).
    pub serve: Option<ServeLatencySummary>,
}

impl ScenarioRow {
    fn from_metrics(name: &'static str, m: &Metrics) -> Self {
        let report = BottleneckReport::classify(m);
        ScenarioRow {
            name,
            iterations: m.iterations,
            bytes_streamed: m.events.bytes_streamed,
            bytes_loaded: m.disk.bytes_loaded,
            bytes_exchanged: m.net.bytes_exchanged,
            plan_time_ms: m.plan.time.as_secs() * 1e3,
            sim_time_ns: m.total_time().as_nanos(),
            wall_ns: report.wall.as_nanos(),
            demand_io_ns: m.disk.demand_pressure().as_nanos(),
            bytes_prefetched: m.disk.bytes_prefetched,
            bound: report.bound.name(),
            serve: None,
        }
    }

    /// Renders the row as one JSON object (hand-rolled; the vendored
    /// serde is a stub).
    #[must_use]
    pub fn to_json(&self) -> String {
        let serve = match &self.serve {
            Some(s) => format!(",\"serve\":{}", s.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"name\":\"{}\",\"iterations\":{},\"bytes_streamed\":{},\
             \"bytes_loaded\":{},\"bytes_exchanged\":{},\"plan_time_ms\":{},\
             \"sim_time_ns\":{},\"wall_ns\":{},\"demand_io_ns\":{},\
             \"bytes_prefetched\":{},\"bound\":\"{}\"{serve}}}",
            self.name,
            self.iterations,
            self.bytes_streamed,
            self.bytes_loaded,
            self.bytes_exchanged,
            self.plan_time_ms,
            self.sim_time_ns,
            self.wall_ns,
            self.demand_io_ns,
            self.bytes_prefetched,
            self.bound
        )
    }
}

/// Renders the full `BENCH_micro.json` document.
#[must_use]
pub fn render_json(rows: &[ScenarioRow]) -> String {
    let body: Vec<String> = rows.iter().map(ScenarioRow::to_json).collect();
    format!(
        "{{\"schema\":\"graphr-bench-micro/v2\",\"scenarios\":[{}]}}\n",
        body.join(",")
    )
}

/// Pruned-plan BFS on the 120×120 grid (the sparse-frontier win).
#[must_use]
pub fn sparse_frontier() -> ScenarioRow {
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&grid(120, 120), &config).expect("grid tiles");
    let mut exec = StreamingExecutor::new(&tiled, &config, bfs_spec());
    let (_, m) = bfs_rounds_on(&mut exec, bfs_spec(), tiled.num_vertices(), true);
    ScenarioRow::from_metrics("sparse_frontier", &m)
}

/// The same BFS driven through the legacy dense `Vec<bool>` frontier on
/// the 240×240 grid — the frontier-mask baseline (its `plan_time_ms`
/// against [`frontier_mask`]'s is the representation's win).
#[must_use]
pub fn frontier_mask_dense() -> ScenarioRow {
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&grid(240, 240), &config).expect("grid tiles");
    let mut exec = StreamingExecutor::new(&tiled, &config, bfs_spec());
    let (_, m) = bfs_rounds_dense(&mut exec, bfs_spec(), tiled.num_vertices());
    ScenarioRow::from_metrics("frontier_mask_dense", &m)
}

/// Hierarchical-mask BFS with driver-supplied deltas on the 240×240 grid.
#[must_use]
pub fn frontier_mask() -> ScenarioRow {
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&grid(240, 240), &config).expect("grid tiles");
    let mut exec = StreamingExecutor::new(&tiled, &config, bfs_spec());
    let (_, m) = bfs_rounds_on(&mut exec, bfs_spec(), tiled.num_vertices(), true);
    ScenarioRow::from_metrics("frontier_mask", &m)
}

/// K=16 co-located BFS queries advanced as fused frontier lanes on the
/// 240×240 grid.
#[must_use]
pub fn fused_wave() -> ScenarioRow {
    let g = grid(240, 240);
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let sources: Vec<u32> = (0..16u32).map(|i| i * 3).collect();
    let opts = LaneTraversalOptions::new(sources);
    let mut exec = StreamingExecutor::new(&tiled, &config, opts.spec);
    let fused = run_bfs_lanes_with(&g, &mut exec, &opts).expect("fused wave");
    ScenarioRow::from_metrics("fused_wave", &fused.metrics)
}

/// Pruned BFS on the 240×240 grid in the out-of-core regime.
#[must_use]
pub fn out_of_core(disk: DiskModel, name: &'static str) -> ScenarioRow {
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&grid(240, 240), &config).expect("grid tiles");
    let mut exec = StreamingExecutor::new(&tiled, &config, bfs_spec()).with_disk(disk);
    let (_, m) = bfs_rounds_on(&mut exec, bfs_spec(), tiled.num_vertices(), true);
    ScenarioRow::from_metrics(name, &m)
}

/// Pruned BFS on the 120×120 grid sharded across a simulated 4-node
/// PCIe cluster.
#[must_use]
pub fn cluster() -> ScenarioRow {
    let config = bench_config();
    let tiled = TiledGraph::preprocess(&grid(120, 120), &config).expect("grid tiles");
    let mut cluster = ClusterExecutor::new(
        &tiled,
        &config,
        bfs_spec(),
        MultiNodeConfig::pcie_cluster(4),
    );
    let (_, m) = bfs_rounds_on(&mut cluster, bfs_spec(), tiled.num_vertices(), true);
    ScenarioRow::from_metrics("cluster_4node", &m)
}

/// A serve batch — eight co-located BFS queries plus one PageRank on the
/// 120×120 grid through the `graphr-serve` scheduler — measured on the
/// simulated service clock: the row's facts come from the drain's summed
/// machine executions, the `serve` field from the latency histograms.
#[must_use]
pub fn serve_batch() -> ScenarioRow {
    use graphr_core::sim::PageRankOptions;

    let handle = GraphHandle::new("grid-120", grid(120, 120));
    let session = Session::new(bench_config());
    let mut server = Server::new(ServeConfig::default());
    for i in 0..8u32 {
        let spec = JobSpec::Bfs(TraversalOptions {
            source: i * 3,
            ..TraversalOptions::default()
        });
        server
            .enqueue(Job::new(handle.clone(), spec))
            .expect("admit bfs");
    }
    server
        .enqueue(Job::new(
            handle.clone(),
            JobSpec::PageRank(PageRankOptions {
                max_iterations: 3,
                tolerance: 0.0,
                ..PageRankOptions::default()
            }),
        ))
        .expect("admit pagerank");

    let results = server.drain(&session);
    let mut iterations = 0usize;
    let mut bytes_streamed = 0u64;
    let mut plan_time_ms = 0f64;
    let mut sim_time_ns = 0f64;
    let mut seen_waves = std::collections::BTreeSet::new();
    for result in &results {
        let report = result.report.as_ref().expect("serve run");
        let m = report.output.metrics();
        // Fused waves share one machine execution; count it once.
        if seen_waves.insert(result.wave) {
            iterations += m.iterations;
            bytes_streamed += m.events.bytes_streamed;
            plan_time_ms += m.plan.time.as_secs() * 1e3;
            sim_time_ns += m.total_time().as_nanos();
        }
    }
    let stats = server.stats();
    let latency = &server.latency().latency;
    ScenarioRow {
        name: "serve_batch",
        iterations,
        bytes_streamed,
        bytes_loaded: 0,
        bytes_exchanged: 0,
        plan_time_ms,
        sim_time_ns,
        wall_ns: sim_time_ns,
        demand_io_ns: 0.0,
        bytes_prefetched: 0,
        bound: "compute",
        serve: Some(ServeLatencySummary::from_latency(
            latency,
            stats.admitted,
            stats.rejected,
            stats.waves,
        )),
    }
}

/// Runs every scenario in its canonical order.
#[must_use]
pub fn run_all() -> Vec<ScenarioRow> {
    vec![
        sparse_frontier(),
        frontier_mask_dense(),
        frontier_mask(),
        fused_wave(),
        out_of_core(DiskModel::nvme(), "out_of_core_nvme"),
        out_of_core(
            DiskModel::nvme().with_prefetch(),
            "out_of_core_nvme_prefetch",
        ),
        out_of_core(DiskModel::sata_ssd(), "out_of_core_sata"),
        cluster(),
        serve_batch(),
    ]
}
