//! Plain-text reporting: aligned tables and log-scale bars, printing the
//! same rows/series the paper's figures plot.

use std::fmt::Write as _;

/// Renders a table with a title, header row, and aligned columns.
///
/// # Examples
///
/// ```
/// use graphr_bench::report::render_table;
///
/// let out = render_table(
///     "demo",
///     &["app", "WV"],
///     &[vec!["PageRank".to_string(), "21.4x".to_string()]],
/// );
/// assert!(out.contains("PageRank"));
/// assert!(out.contains("WV"));
/// ```
#[must_use]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// A log-scale ASCII bar for a ratio (the paper's figures are log-scale
/// bar charts); 8 characters per decade, clamped at 1×..1000×.
///
/// # Examples
///
/// ```
/// use graphr_bench::report::log_bar;
///
/// assert!(log_bar(100.0).len() > log_bar(10.0).len());
/// assert_eq!(log_bar(0.5), "");
/// ```
#[must_use]
pub fn log_bar(ratio: f64) -> String {
    if ratio <= 1.0 {
        return String::new();
    }
    let decades = ratio.log10().clamp(0.0, 3.0);
    "#".repeat((decades * 8.0).round() as usize)
}

/// Formats a ratio as the paper prints them (`16.01x`).
#[must_use]
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a ratio with a trailing log-scale bar.
#[must_use]
pub fn ratio_with_bar(x: f64) -> String {
    format!("{:<9} {}", ratio(x), log_bar(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_expands_to_widest_cell() {
        let out = render_table(
            "t",
            &["a", "b"],
            &[
                vec!["x".into(), "longer-cell".into()],
                vec!["yy".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        // Header, separator, two rows (+title/blank).
        assert!(lines.iter().any(|l| l.contains("longer-cell")));
        let header_line = lines.iter().find(|l| l.starts_with('a')).unwrap();
        assert!(header_line.contains('b'));
    }

    #[test]
    fn log_bar_is_monotonic() {
        assert!(log_bar(2.0).len() <= log_bar(20.0).len());
        assert!(log_bar(20.0).len() <= log_bar(200.0).len());
        assert_eq!(log_bar(1.0), "");
        // Clamped at three decades.
        assert_eq!(log_bar(1e6).len(), 24);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(16.012), "16.01x");
        assert!(ratio_with_bar(100.0).contains('#'));
    }
}
