//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! Each function runs a controlled comparison and returns structured
//! results plus a rendered table; the corresponding `ablation_*` bench
//! targets print them.

use graphr_core::config::StreamingOrder;
use graphr_core::sim::{run_pagerank, run_sssp, PageRankOptions, TraversalOptions};
use graphr_graph::algorithms::pagerank::{pagerank, PageRankParams};
use graphr_graph::DatasetSpec;
use graphr_reram::NoiseModel;
use graphr_units::{BitSlicer, FixedSpec};

use crate::apps::traversal_source;
use crate::context::ExperimentContext;
use crate::report::{ratio, render_table};

fn pr_opts(iters: usize) -> PageRankOptions {
    PageRankOptions {
        max_iterations: iters,
        tolerance: 0.0,
        ..PageRankOptions::default()
    }
}

/// §3.3: column-major vs row-major streaming-apply. Reports runtime,
/// register writes, and required RegO capacity for PageRank on Amazon.
#[must_use]
pub fn streaming_order(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::amazon();
    let graph = ctx.graph(&spec);
    let mut rows = Vec::new();
    for (name, order) in [
        ("column-major (GraphR)", StreamingOrder::ColumnMajor),
        ("row-major (rejected)", StreamingOrder::RowMajor),
    ] {
        let mut config = ctx.config_clone();
        config.order = order;
        let run = run_pagerank(&graph, &config, &pr_opts(5)).expect("valid config");
        rows.push(vec![
            name.to_string(),
            format!("{}", run.metrics.total_time()),
            format!("{}", run.metrics.total_energy()),
            run.metrics.events.register_writes.to_string(),
            run.metrics.events.rego_capacity_required.to_string(),
        ]);
    }
    render_table(
        "Ablation: streaming-apply order (PageRank on AZ, 5 iterations)",
        &[
            "order",
            "time",
            "energy",
            "register writes",
            "RegO entries needed",
        ],
        &rows,
    )
}

/// §3.3: empty-subgraph skipping on/off, PageRank and SSSP on WikiVote.
#[must_use]
pub fn skip_empty(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::wiki_vote();
    let graph = ctx.graph(&spec);
    let mut rows = Vec::new();
    for (name, skip) in [("skip empty (GraphR)", true), ("scan all windows", false)] {
        let mut config = ctx.config_clone();
        config.skip_empty = skip;
        let pr = run_pagerank(&graph, &config, &pr_opts(5)).expect("valid config");
        let ss = run_sssp(
            &graph,
            &config,
            &TraversalOptions {
                source: traversal_source(&graph),
                ..TraversalOptions::default()
            },
        )
        .expect("valid config");
        rows.push(vec![
            name.to_string(),
            format!("{}", pr.metrics.total_time()),
            format!("{}", pr.metrics.total_energy()),
            format!("{}", ss.metrics.total_time()),
        ]);
    }
    render_table(
        "Ablation: empty-window skipping (WV)",
        &["mode", "PR time", "PR energy", "SSSP time"],
        &rows,
    )
}

/// §3.1: crossbar size sweep — the paper picks 8×8 as the sweet spot
/// between parallelism and sparsity waste.
#[must_use]
pub fn crossbar_size(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::slashdot();
    let graph = ctx.graph(&spec);
    let mut rows = Vec::new();
    for c in [4usize, 8, 16, 32] {
        let mut config = ctx.config_clone();
        config.crossbar_size = c;
        let run = run_pagerank(&graph, &config, &pr_opts(5)).expect("valid config");
        let tiles = run.metrics.events.tiles_loaded;
        let edges = run.metrics.events.edges_loaded;
        rows.push(vec![
            format!("{c}x{c}"),
            format!("{}", run.metrics.total_time()),
            format!("{}", run.metrics.total_energy()),
            format!("{:.2}", edges as f64 / tiles.max(1) as f64),
        ]);
    }
    render_table(
        "Ablation: crossbar size (PageRank on SD, 5 iterations)",
        &["crossbar", "time", "energy", "edges per loaded tile"],
        &rows,
    )
}

/// §3.2: datapath precision — total fixed-point width vs PageRank
/// accuracy. Demonstrates the "algorithms tolerate imprecision" claim and
/// where it breaks.
#[must_use]
pub fn precision(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::wiki_vote();
    let graph = ctx.graph(&spec);
    let gold = pagerank(
        &graph.to_csr(),
        &PageRankParams {
            max_iterations: 20,
            tolerance: 0.0,
            ..PageRankParams::default()
        },
    );
    let mut rows = Vec::new();
    for (bits, cell_bits, frac_matrix, frac_reg) in [
        (8u8, 2u8, 7u8, 3u8),
        (12, 3, 11, 5),
        (16, 4, 15, 6),
        (24, 6, 23, 10),
    ] {
        let mut config = ctx.config_clone();
        config.slicer = BitSlicer::new(cell_bits, 4).expect("valid slicer");
        let opts = PageRankOptions {
            matrix_spec: FixedSpec::new(bits, frac_matrix).expect("valid spec"),
            register_spec: FixedSpec::new(bits, frac_reg).expect("valid spec"),
            ..pr_opts(20)
        };
        let run = run_pagerank(&graph, &config, &opts).expect("valid config");
        let l1: f64 = run
            .values
            .iter()
            .zip(&gold.ranks)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let mass: f64 = run.values.iter().sum();
        rows.push(vec![
            format!("{bits}-bit ({cell_bits}-bit cells)"),
            format!("{l1:.4}"),
            format!("{mass:.4}"),
            format!("{}", run.metrics.total_energy()),
        ]);
    }
    render_table(
        "Ablation: datapath precision (PageRank on WV, 20 iterations)",
        &["datapath", "L1 error vs gold", "rank mass", "energy"],
        &rows,
    )
}

/// §1's error-tolerance claim under analog programming noise: PageRank
/// ranking quality and SSSP correctness as conductance noise grows.
#[must_use]
pub fn noise(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::wiki_vote();
    let graph = ctx.graph(&spec);
    let gold = pagerank(
        &graph.to_csr(),
        &PageRankParams {
            max_iterations: 20,
            tolerance: 0.0,
            ..PageRankParams::default()
        },
    );
    let top_gold = top_k(&gold.ranks, 10);
    let mut rows = Vec::new();
    for sigma in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let mut config = ctx.config_clone();
        config.fidelity = graphr_core::Fidelity::Analog;
        if sigma > 0.0 {
            config.noise = NoiseModel::Gaussian {
                sigma_rel: sigma,
                seed: 7,
            };
        }
        let run = run_pagerank(&graph, &config, &pr_opts(20)).expect("valid config");
        let top_sim = top_k(&run.values, 10);
        let overlap = top_gold.iter().filter(|v| top_sim.contains(v)).count();
        let l1: f64 = run
            .values
            .iter()
            .zip(&gold.ranks)
            .map(|(a, b)| (a - b).abs())
            .sum();
        rows.push(vec![
            format!("{:.1}%", sigma * 100.0),
            format!("{l1:.4}"),
            format!("{overlap}/10"),
        ]);
    }
    render_table(
        "Ablation: analog programming noise (PageRank on WV, analog fidelity)",
        &["noise sigma", "L1 error vs gold", "top-10 overlap"],
        &rows,
    )
}

/// Extension: stuck-at fault tolerance. ReRAM arrays ship with hard
/// stuck-at-LRS/HRS defects; this sweeps the fault rate and reports
/// PageRank ranking quality and SSSP exactness — where the §1 error
/// tolerance claim holds and where it breaks.
#[must_use]
pub fn faults(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::wiki_vote();
    let graph = ctx.graph(&spec);
    let gold_pr = pagerank(
        &graph.to_csr(),
        &PageRankParams {
            max_iterations: 20,
            tolerance: 0.0,
            ..PageRankParams::default()
        },
    );
    let top_gold = top_k(&gold_pr.ranks, 10);
    let src = traversal_source(&graph);
    let gold_ss = graphr_graph::algorithms::sssp::dijkstra(&graph.to_csr(), src);
    let mut rows = Vec::new();
    for rate in [0.0, 1e-4, 1e-3, 1e-2] {
        let mut config = ctx.config_clone();
        config.fidelity = graphr_core::Fidelity::Analog;
        if rate > 0.0 {
            config.noise = NoiseModel::StuckAt {
                stuck_low: rate / 2.0,
                stuck_high: rate / 2.0,
                seed: 11,
            };
        }
        let pr = run_pagerank(&graph, &config, &pr_opts(20)).expect("valid config");
        let top_sim = top_k(&pr.values, 10);
        let overlap = top_gold.iter().filter(|v| top_sim.contains(v)).count();
        let ss = run_sssp(
            &graph,
            &config,
            &TraversalOptions {
                source: src,
                ..TraversalOptions::default()
            },
        )
        .expect("valid config");
        let exact = ss
            .distances
            .iter()
            .zip(&gold_ss.distances)
            .filter(|(a, b)| a == b)
            .count();
        rows.push(vec![
            format!("{rate:.0e}"),
            format!("{overlap}/10"),
            format!("{exact}/{}", ss.distances.len()),
        ]);
    }
    render_table(
        "Extension: stuck-at fault tolerance (WV, analog fidelity)",
        &["fault rate", "PR top-10 overlap", "SSSP vertices exact"],
        &rows,
    )
}

/// Extension: weakly-connected components, the add-op-pattern application
/// beyond Table 2 that demonstrates the §3.5 generality claim.
#[must_use]
pub fn wcc_extension(ctx: &ExperimentContext) -> String {
    let mut rows = Vec::new();
    for spec in [DatasetSpec::wiki_vote(), DatasetSpec::slashdot()] {
        let graph = ctx.graph(&spec);
        if graph.num_vertices() > 32_000 {
            continue; // 16-bit label limit, documented in run_wcc
        }
        let run = graphr_core::sim::run_wcc(&graph, ctx.config()).expect("valid config");
        let gold = graphr_graph::algorithms::wcc::wcc(&graph);
        assert_eq!(run.labels, gold.labels, "WCC must match union-find");
        rows.push(vec![
            spec.tag.to_string(),
            run.num_components.to_string(),
            run.metrics.iterations.to_string(),
            format!("{}", run.metrics.total_time()),
            format!("{}", run.metrics.total_energy()),
        ]);
    }
    render_table(
        "Extension: weakly-connected components on GraphR (matches union-find)",
        &["dataset", "components", "rounds", "time", "energy"],
        &rows,
    )
}

fn top_k(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    idx.truncate(k);
    idx
}

/// Scalability in the number of graph engines.
#[must_use]
pub fn ge_count(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::web_google();
    let graph = ctx.graph(&spec);
    let mut rows = Vec::new();
    let mut base_time = None;
    for g in [16usize, 32, 64, 128, 256] {
        let mut config = ctx.config_clone();
        config.num_ges = g;
        let run = run_pagerank(&graph, &config, &pr_opts(5)).expect("valid config");
        let t = run.metrics.total_time();
        let speedup = base_time.get_or_insert(t).ratio(t);
        rows.push(vec![
            g.to_string(),
            format!("{t}"),
            ratio(speedup),
            format!("{}", run.metrics.total_energy()),
        ]);
    }
    render_table(
        "Ablation: graph-engine count (PageRank on WG, 5 iterations)",
        &["GEs", "time", "speedup vs 16 GEs", "energy"],
        &rows,
    )
}

/// §2.1: GridGraph dual sliding windows vs X-Stream scatter/gather on the
/// CPU — the update-traffic argument for the paper's baseline choice.
#[must_use]
pub fn cpu_engine(ctx: &ExperimentContext) -> String {
    let spec = DatasetSpec::amazon();
    let graph = ctx.graph(&spec);
    let settings = graphr_gridgraph::engine::PageRankSettings {
        max_iterations: 10,
        tolerance: 0.0,
        ..graphr_gridgraph::engine::PageRankSettings::default()
    };
    let gg = graphr_gridgraph::engine::GridEngine::with_auto_partitions(&graph).pagerank(&settings);
    let xs = graphr_gridgraph::xstream::pagerank(&graph, &settings);
    let cpu = ctx.cpu_model();
    let rows = vec![
        vec![
            "GridGraph (dual windows)".to_string(),
            gg.stats.total_sequential_bytes().to_string(),
            gg.stats.total_update_records().to_string(),
            format!("{}", cpu.run_time(&gg.stats)),
        ],
        vec![
            "X-Stream (scatter/gather)".to_string(),
            xs.stats.total_sequential_bytes().to_string(),
            xs.stats.total_update_records().to_string(),
            format!("{}", cpu.run_time(&xs.stats)),
        ],
    ];
    render_table(
        "Ablation: CPU engine (PageRank on AZ, 10 iterations)",
        &[
            "engine",
            "sequential bytes",
            "update records",
            "modelled time",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentContext {
        ExperimentContext::with_scale(0.001)
    }

    #[test]
    fn streaming_order_report_contains_both_orders() {
        let out = streaming_order(&tiny());
        assert!(out.contains("column-major"));
        assert!(out.contains("row-major"));
    }

    #[test]
    fn skip_empty_report_renders() {
        let out = skip_empty(&tiny());
        assert!(out.contains("scan all windows"));
    }

    #[test]
    fn crossbar_sweep_covers_four_sizes() {
        let out = crossbar_size(&tiny());
        for c in ["4x4", "8x8", "16x16", "32x32"] {
            assert!(out.contains(c), "missing {c}");
        }
    }

    #[test]
    fn precision_sweep_shows_error_column() {
        let out = precision(&tiny());
        assert!(out.contains("L1 error"));
        assert!(out.contains("16-bit"));
    }

    #[test]
    fn cpu_engine_shows_update_gap() {
        let out = cpu_engine(&tiny());
        assert!(out.contains("GridGraph"));
        assert!(out.contains("X-Stream"));
    }
}
