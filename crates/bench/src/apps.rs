//! Application runners: execute one (application, dataset) cell of the
//! evaluation grid on all four platforms.
//!
//! GraphR numbers come from the `graphr-core` simulator (functional run +
//! event-count time/energy); CPU, GPU and PIM numbers come from the
//! `graphr-gridgraph` software engine's recorded workload pushed through
//! the `graphr-platforms` cost models. Iteration counts are pinned equal
//! across platforms: PageRank runs a fixed 20 power iterations, BFS/SSSP
//! run to convergence (both engines are synchronous, so they converge in
//! identical rounds), SpMV is one pass, CF trains 3 epochs at feature
//! length 32 (§5.1).

use graphr_core::sim::{
    run_bfs, run_cf, run_pagerank, run_spmv, run_sssp, CfOptions, PageRankOptions, SpmvOptions,
    TraversalOptions,
};
use graphr_core::Metrics;
use graphr_graph::{DatasetSpec, EdgeList};
use graphr_gridgraph::engine::{CfSettings, GridEngine, PageRankSettings};
use graphr_gridgraph::WorkloadStats;
use graphr_units::{Joules, Nanos};
use serde::Serialize;

use crate::context::ExperimentContext;

/// PageRank power iterations pinned across platforms.
pub const PAGERANK_ITERATIONS: usize = 20;

/// CF training epochs pinned across platforms.
pub const CF_EPOCHS: usize = 3;

/// CF latent feature length (§5.1: 32).
pub const CF_FEATURES: usize = 32;

/// The five evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum App {
    /// PageRank (parallel MAC).
    PageRank,
    /// Breadth-first search (parallel add-op).
    Bfs,
    /// Single-source shortest paths (parallel add-op).
    Sssp,
    /// Sparse matrix–vector multiplication (parallel MAC, one pass).
    Spmv,
    /// Collaborative filtering (parallel MAC, bipartite).
    Cf,
}

impl App {
    /// Short display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            App::PageRank => "PageRank",
            App::Bfs => "BFS",
            App::Sssp => "SSSP",
            App::Spmv => "SpMV",
            App::Cf => "CF",
        }
    }

    /// The four applications run on the directed datasets (Figure 17's
    /// panels, in order).
    #[must_use]
    pub fn directed_apps() -> [App; 4] {
        [App::PageRank, App::Bfs, App::Sssp, App::Spmv]
    }
}

/// Time + energy of one platform on one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlatformNumbers {
    /// Wall-clock time.
    pub time: Nanos,
    /// Energy.
    pub energy: Joules,
}

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Serialize)]
pub struct AppRun {
    /// Application.
    pub app: App,
    /// Dataset tag (Table 3).
    pub dataset: &'static str,
    /// GraphR simulator numbers.
    pub graphr: PlatformNumbers,
    /// CPU (GridGraph on the Table 4 Xeon).
    pub cpu: PlatformNumbers,
    /// GPU (Gunrock-style on the Table 5 K40c).
    pub gpu: PlatformNumbers,
    /// PIM (Tesseract-style).
    pub pim: PlatformNumbers,
    /// Iterations/rounds/epochs executed.
    pub iterations: usize,
    /// Full GraphR accounting (for breakdown reporting).
    pub graphr_metrics: Metrics,
}

impl AppRun {
    /// Speedup of GraphR over the CPU.
    #[must_use]
    pub fn speedup_vs_cpu(&self) -> f64 {
        self.cpu.time.ratio(self.graphr.time)
    }

    /// Energy saving of GraphR over the CPU.
    #[must_use]
    pub fn energy_saving_vs_cpu(&self) -> f64 {
        self.cpu.energy.ratio(self.graphr.energy)
    }
}

/// Picks the traversal source: the highest-out-degree vertex, so BFS/SSSP
/// reach a large component on every dataset (deterministic).
#[must_use]
pub fn traversal_source(graph: &EdgeList) -> u32 {
    graph
        .out_degrees()
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map_or(0, |(v, _)| v as u32)
}

fn platform_numbers(ctx: &ExperimentContext, stats: &WorkloadStats) -> [PlatformNumbers; 3] {
    let cpu = ctx.cpu_model();
    let gpu = ctx.gpu_model();
    let pim = ctx.pim_model();
    [
        PlatformNumbers {
            time: cpu.run_time(stats),
            energy: cpu.run_energy(stats),
        },
        PlatformNumbers {
            time: gpu.run_time(stats),
            energy: gpu.run_energy(stats),
        },
        PlatformNumbers {
            time: pim.run_time(stats),
            energy: pim.run_energy(stats),
        },
    ]
}

/// Runs one cell of the evaluation grid.
///
/// # Panics
///
/// Panics if `app` is [`App::Cf`] and the dataset is not bipartite, or on
/// internal simulator errors (the standard configuration is always valid).
#[must_use]
pub fn run_app(ctx: &ExperimentContext, app: App, spec: &DatasetSpec) -> AppRun {
    let graph = ctx.graph(spec);
    let engine = GridEngine::with_auto_partitions(&graph);
    let config = ctx.config();
    let (metrics, stats, iterations) = match app {
        App::PageRank => {
            let sw = engine.pagerank(&PageRankSettings {
                max_iterations: PAGERANK_ITERATIONS,
                tolerance: 0.0,
                ..PageRankSettings::default()
            });
            let hw = run_pagerank(
                &graph,
                config,
                &PageRankOptions {
                    max_iterations: PAGERANK_ITERATIONS,
                    tolerance: 0.0,
                    ..PageRankOptions::default()
                },
            )
            .expect("standard configuration");
            (hw.metrics, sw.stats, PAGERANK_ITERATIONS)
        }
        App::Bfs => {
            let src = traversal_source(&graph);
            let sw = engine.bfs(src);
            let hw = run_bfs(
                &graph,
                config,
                &TraversalOptions {
                    source: src,
                    ..TraversalOptions::default()
                },
            )
            .expect("standard configuration");
            let iters = hw.metrics.iterations;
            (hw.metrics, sw.stats, iters)
        }
        App::Sssp => {
            let src = traversal_source(&graph);
            let sw = engine.sssp(src);
            let hw = run_sssp(
                &graph,
                config,
                &TraversalOptions {
                    source: src,
                    ..TraversalOptions::default()
                },
            )
            .expect("standard configuration");
            let iters = hw.metrics.iterations;
            (hw.metrics, sw.stats, iters)
        }
        App::Spmv => {
            let sw = engine.spmv(None);
            let hw =
                run_spmv(&graph, config, &SpmvOptions::default()).expect("standard configuration");
            (hw.metrics, sw.stats, 1)
        }
        App::Cf => {
            let (users, items) = ctx
                .bipartite(spec)
                .expect("CF requires a bipartite dataset");
            let sw = engine.cf(
                users,
                items,
                &CfSettings {
                    features: CF_FEATURES,
                    epochs: CF_EPOCHS,
                    ..CfSettings::default()
                },
            );
            let hw = run_cf(
                &graph,
                users,
                items,
                config,
                &CfOptions {
                    features: CF_FEATURES,
                    epochs: CF_EPOCHS,
                    ..CfOptions::default()
                },
            )
            .expect("standard configuration");
            (hw.metrics, sw.stats, CF_EPOCHS)
        }
    };
    let [cpu, gpu, pim] = platform_numbers(ctx, &stats);
    AppRun {
        app,
        dataset: spec.tag,
        graphr: PlatformNumbers {
            time: metrics.total_time(),
            energy: metrics.total_energy(),
        },
        cpu,
        gpu,
        pim,
        iterations,
        graphr_metrics: metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::with_scale(0.002)
    }

    #[test]
    fn pagerank_cell_produces_positive_numbers() {
        let ctx = tiny_ctx();
        let run = run_app(&ctx, App::PageRank, &DatasetSpec::wiki_vote());
        assert!(run.graphr.time.as_nanos() > 0.0);
        assert!(run.cpu.time > run.graphr.time, "CPU should be slower");
        assert!(run.speedup_vs_cpu() > 1.0);
        assert!(run.energy_saving_vs_cpu() > 1.0);
        assert_eq!(run.iterations, PAGERANK_ITERATIONS);
    }

    #[test]
    fn traversal_cells_converge_in_same_rounds() {
        let ctx = tiny_ctx();
        let spec = DatasetSpec::slashdot();
        let run = run_app(&ctx, App::Bfs, &spec);
        // The software engine ran the same number of rounds (+1 terminal
        // check round difference at most).
        let graph = ctx.graph(&spec);
        let sw = GridEngine::with_auto_partitions(&graph).bfs(traversal_source(&graph));
        let diff = (sw.stats.num_iterations() as i64 - run.iterations as i64).abs();
        assert!(diff <= 1, "round counts diverge: {diff}");
    }

    #[test]
    fn cf_runs_on_netflix_clone() {
        let ctx = ExperimentContext::with_scale(0.001);
        let run = run_app(&ctx, App::Cf, &DatasetSpec::netflix());
        assert!(run.graphr.energy.as_joules() > 0.0);
        assert_eq!(run.iterations, CF_EPOCHS);
    }

    #[test]
    fn source_is_max_out_degree() {
        let g = graphr_graph::generators::structured::star(5);
        assert_eq!(traversal_source(&g), 0);
    }
}
