//! Statistics primitives for the evaluation harness.
//!
//! The paper reports geometric-mean speedups across application × dataset
//! grids; the simulators count events (tile loads, ADC conversions, bytes
//! streamed). [`Counter`], [`Summary`] and [`GeoMean`] cover those needs
//! without pulling in a stats dependency.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use graphr_units::Counter;
///
/// let mut adc_conversions = Counter::new();
/// adc_conversions.add(64);
/// adc_conversions.incr();
/// assert_eq!(adc_conversions.get(), 65);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Current count as `f64`, for rate computations.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running min / max / mean / count over a stream of `f64` observations.
///
/// # Examples
///
/// ```
/// use graphr_units::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.observe(x);
/// }
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// assert_eq!(s.mean(), Some(4.0));
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    #[must_use]
    pub fn min(self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    #[must_use]
    pub fn max(self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    #[must_use]
    pub fn mean(self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.observe(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Accumulates a geometric mean in log space — the aggregation the paper
/// uses for its headline 16.01× / 33.82× numbers.
///
/// # Examples
///
/// ```
/// use graphr_units::GeoMean;
///
/// let gm: GeoMean = [2.0, 8.0].into_iter().collect();
/// assert_eq!(gm.value(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GeoMean {
    log_sum: f64,
    count: u64,
}

impl GeoMean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        GeoMean {
            log_sum: 0.0,
            count: 0,
        }
    }

    /// Records one strictly positive observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive — a geometric mean over ratios
    /// is only defined for positive values, and a non-positive speedup is a
    /// harness bug worth failing loudly on.
    pub fn observe(&mut self, x: f64) {
        assert!(x > 0.0, "geometric mean requires positive values, got {x}");
        self.log_sum += x.ln();
        self.count += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(self) -> u64 {
        self.count
    }

    /// The geometric mean, or `None` if empty.
    #[must_use]
    pub fn value(self) -> Option<f64> {
        (self.count > 0).then(|| (self.log_sum / self.count as f64).exp())
    }
}

impl Extend<f64> for GeoMean {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.observe(x);
        }
    }
}

impl FromIterator<f64> for GeoMean {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut g = GeoMean::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.as_f64(), 11.0);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_from_iterator() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn summary_tracks_extremes_with_negatives() {
        let s: Summary = [-5.0, 0.0, 5.0].into_iter().collect();
        assert_eq!(s.min(), Some(-5.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.mean(), Some(0.0));
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let g: GeoMean = std::iter::repeat_n(7.0, 5).collect();
        let v = g.value().unwrap();
        assert!((v - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_geomean_is_none() {
        assert_eq!(GeoMean::new().value(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        GeoMean::new().observe(0.0);
    }

    proptest! {
        #[test]
        fn geomean_between_min_and_max(values in proptest::collection::vec(0.001f64..1000.0, 1..50)) {
            let g: GeoMean = values.iter().copied().collect();
            let v = g.value().unwrap();
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn summary_mean_between_min_and_max(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s: Summary = values.iter().copied().collect();
            let mean = s.mean().unwrap();
            prop_assert!(mean >= s.min().unwrap() - 1e-9);
            prop_assert!(mean <= s.max().unwrap() + 1e-9);
        }
    }
}
