//! Fixed-point quantisation and bit slicing.
//!
//! GraphR stores edge weights and vertex properties as 16-bit fixed-point
//! numbers, physically realised as four 4-bit ReRAM cells whose partial
//! products are recombined by a shift-and-add (S/A) unit (paper §3.2, *Data
//! Format*). [`FixedSpec`] performs the value ⇄ integer quantisation and
//! [`BitSlicer`] performs the integer ⇄ cell-slice decomposition.
//!
//! Cells hold *unsigned* conductances, so slicing operates on magnitudes;
//! signed values are handled one level up (the crossbar model uses a
//! differential pair of arrays, the standard trick in ReRAM accelerators).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error constructing a [`FixedSpec`] or [`BitSlicer`] with impossible bit
/// widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedSpecError {
    message: String,
}

impl FixedSpecError {
    fn new(message: impl Into<String>) -> Self {
        FixedSpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FixedSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fixed-point specification: {}", self.message)
    }
}

impl Error for FixedSpecError {}

/// A signed fixed-point format: `total_bits` two's-complement bits of which
/// `frac_bits` sit below the binary point.
///
/// Quantisation rounds to nearest and saturates at the representable range,
/// which is what a hardware quantiser does and is the error source the paper
/// claims graph algorithms tolerate.
///
/// # Examples
///
/// ```
/// use graphr_units::FixedSpec;
///
/// let q4_12 = FixedSpec::new(16, 12)?;
/// assert_eq!(q4_12.resolution(), 1.0 / 4096.0);
/// // Exactly representable values round-trip:
/// let q = q4_12.quantize(1.5);
/// assert_eq!(q4_12.dequantize(q), 1.5);
/// // Everything else lands within half a step:
/// let err = (q4_12.quantize_value(0.1) - 0.1).abs();
/// assert!(err <= q4_12.resolution() / 2.0);
/// # Ok::<(), graphr_units::FixedSpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedSpec {
    total_bits: u8,
    frac_bits: u8,
}

impl FixedSpec {
    /// Creates a fixed-point format with `total_bits` total (including sign)
    /// and `frac_bits` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixedSpecError`] if `total_bits` is 0 or exceeds 31, or if
    /// `frac_bits >= total_bits` (at least one bit must remain for the
    /// integer part / sign).
    pub fn new(total_bits: u8, frac_bits: u8) -> Result<Self, FixedSpecError> {
        if total_bits == 0 || total_bits > 31 {
            return Err(FixedSpecError::new(format!(
                "total_bits must be in 1..=31, got {total_bits}"
            )));
        }
        if frac_bits >= total_bits {
            return Err(FixedSpecError::new(format!(
                "frac_bits ({frac_bits}) must be < total_bits ({total_bits})"
            )));
        }
        Ok(FixedSpec {
            total_bits,
            frac_bits,
        })
    }

    /// The paper's data format: 16-bit fixed point. Twelve fractional bits
    /// suit probability-valued algorithms (PageRank, SpMV on stochastic
    /// matrices) where values live in roughly `[-8, 8)`.
    #[must_use]
    pub fn paper_default() -> Self {
        FixedSpec {
            total_bits: 16,
            frac_bits: 12,
        }
    }

    /// Total number of bits, including the sign bit.
    #[must_use]
    pub fn total_bits(self) -> u8 {
        self.total_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// The value of one least-significant step, `2^-frac_bits`.
    #[must_use]
    pub fn resolution(self) -> f64 {
        (f64::from(self.frac_bits)).exp2().recip()
    }

    /// Largest representable raw integer, `2^(total_bits-1) - 1`.
    #[must_use]
    pub fn max_raw(self) -> i32 {
        (1i32 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw integer, `-2^(total_bits-1)`.
    #[must_use]
    pub fn min_raw(self) -> i32 {
        -(1i32 << (self.total_bits - 1))
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(self) -> f64 {
        self.dequantize(self.max_raw())
    }

    /// Smallest (most negative) representable value.
    #[must_use]
    pub fn min_value(self) -> f64 {
        self.dequantize(self.min_raw())
    }

    /// Quantises `x` to the nearest representable raw integer, saturating at
    /// the format's range. NaN quantises to zero (a hardware quantiser has no
    /// NaN; callers are expected to keep NaN out of the datapath).
    #[must_use]
    pub fn quantize(self, x: f64) -> i32 {
        if x.is_nan() {
            return 0;
        }
        let scaled = (x * f64::from(self.frac_bits).exp2()).round();
        if scaled >= f64::from(self.max_raw()) {
            self.max_raw()
        } else if scaled <= f64::from(self.min_raw()) {
            self.min_raw()
        } else {
            // Safety of cast: bounds checked above and max_raw fits in i32.
            scaled as i32
        }
    }

    /// Converts a raw integer back to its real value.
    #[must_use]
    pub fn dequantize(self, q: i32) -> f64 {
        f64::from(q) * self.resolution()
    }

    /// Quantises and immediately dequantises: the value the hardware would
    /// actually compute with.
    #[must_use]
    pub fn quantize_value(self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// The absolute quantisation error for `x` (zero for exactly
    /// representable in-range values).
    #[must_use]
    pub fn quantization_error(self, x: f64) -> f64 {
        (self.quantize_value(x) - x).abs()
    }
}

impl Default for FixedSpec {
    fn default() -> Self {
        FixedSpec::paper_default()
    }
}

impl fmt::Display for FixedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{}",
            self.total_bits - self.frac_bits,
            self.frac_bits
        )
    }
}

/// Decomposes an unsigned magnitude into little-endian cell slices and
/// recombines per-slice analog results via shift-and-add.
///
/// A 16-bit magnitude `M` with 4-bit cells becomes `[M0, M1, M2, M3]` such
/// that `M = M3·2^12 + M2·2^8 + M1·2^4 + M0` — exactly the paper's
/// `D3 << 12 + D2 << 8 + D1 << 4 + D0` recombination.
///
/// # Examples
///
/// ```
/// use graphr_units::BitSlicer;
///
/// let slicer = BitSlicer::new(4, 4)?;
/// let slices = slicer.slice(0xBEEF);
/// assert_eq!(slices, vec![0xF, 0xE, 0xE, 0xB]);
/// assert_eq!(slicer.recombine_u64(&[0xF, 0xE, 0xE, 0xB]), 0xBEEF);
/// # Ok::<(), graphr_units::FixedSpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSlicer {
    cell_bits: u8,
    num_slices: u8,
}

impl BitSlicer {
    /// Creates a slicer for `num_slices` cells of `cell_bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`FixedSpecError`] if either argument is zero or the total
    /// width exceeds 32 bits.
    pub fn new(cell_bits: u8, num_slices: u8) -> Result<Self, FixedSpecError> {
        if cell_bits == 0 || num_slices == 0 {
            return Err(FixedSpecError::new(
                "cell_bits and num_slices must be positive",
            ));
        }
        if u32::from(cell_bits) * u32::from(num_slices) > 32 {
            return Err(FixedSpecError::new(format!(
                "total sliced width {} exceeds 32 bits",
                u32::from(cell_bits) * u32::from(num_slices)
            )));
        }
        Ok(BitSlicer {
            cell_bits,
            num_slices,
        })
    }

    /// The paper's configuration: four 4-bit slices forming 16 bits.
    #[must_use]
    pub fn paper_default() -> Self {
        BitSlicer {
            cell_bits: 4,
            num_slices: 4,
        }
    }

    /// Bits stored per ReRAM cell.
    #[must_use]
    pub fn cell_bits(self) -> u8 {
        self.cell_bits
    }

    /// Number of slices (and thus of ganged crossbars).
    #[must_use]
    pub fn num_slices(self) -> u8 {
        self.num_slices
    }

    /// Total representable magnitude width in bits.
    #[must_use]
    pub fn total_bits(self) -> u8 {
        self.cell_bits * self.num_slices
    }

    /// Largest magnitude representable, `2^total_bits - 1`.
    #[must_use]
    pub fn max_magnitude(self) -> u32 {
        if self.total_bits() == 32 {
            u32::MAX
        } else {
            (1u32 << self.total_bits()) - 1
        }
    }

    /// Splits `magnitude` into little-endian slices, one per cell.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` exceeds [`BitSlicer::max_magnitude`]; the caller
    /// (the quantiser) guarantees range.
    #[must_use]
    pub fn slice(self, magnitude: u32) -> Vec<u8> {
        assert!(
            magnitude <= self.max_magnitude(),
            "magnitude {magnitude} exceeds {} bits",
            self.total_bits()
        );
        let mask = (1u32 << self.cell_bits) - 1;
        (0..self.num_slices)
            .map(|i| ((magnitude >> (u32::from(i) * u32::from(self.cell_bits))) & mask) as u8)
            .collect()
    }

    /// Recombines integer per-slice results: `Σ slices[i] << (i·cell_bits)`.
    #[must_use]
    pub fn recombine_u64(self, slices: &[u64]) -> u64 {
        slices
            .iter()
            .enumerate()
            .map(|(i, &s)| s << (i * usize::from(self.cell_bits)))
            .sum()
    }

    /// Recombines *analog* per-slice results (bitline currents already
    /// digitised by the ADC): `Σ outputs[i] · 2^(i·cell_bits)`.
    ///
    /// This is the shift-and-add unit's arithmetic in the value domain.
    #[must_use]
    pub fn recombine_f64(self, outputs: &[f64]) -> f64 {
        outputs
            .iter()
            .enumerate()
            .map(|(i, &o)| o * f64::from(i as u32 * u32::from(self.cell_bits)).exp2())
            .sum()
    }
}

impl Default for BitSlicer {
    fn default() -> Self {
        BitSlicer::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_specs() {
        assert!(FixedSpec::new(0, 0).is_err());
        assert!(FixedSpec::new(32, 4).is_err());
        assert!(FixedSpec::new(8, 8).is_err());
        assert!(FixedSpec::new(8, 9).is_err());
        assert!(BitSlicer::new(0, 4).is_err());
        assert!(BitSlicer::new(4, 0).is_err());
        assert!(BitSlicer::new(8, 5).is_err());
    }

    #[test]
    fn paper_default_is_16_bit_q4_12() {
        let spec = FixedSpec::paper_default();
        assert_eq!(spec.total_bits(), 16);
        assert_eq!(spec.frac_bits(), 12);
        assert_eq!(spec.to_string(), "Q4.12");
        assert_eq!(spec.max_raw(), 32767);
        assert_eq!(spec.min_raw(), -32768);
    }

    #[test]
    fn exact_values_round_trip() {
        let spec = FixedSpec::new(16, 12).unwrap();
        for v in [-4.0, -1.0, -0.25, 0.0, 0.5, 1.0, 3.75] {
            assert_eq!(spec.quantize_value(v), v, "value {v} should be exact");
        }
    }

    #[test]
    fn saturation_clamps_out_of_range() {
        let spec = FixedSpec::new(8, 4).unwrap(); // range [-8, 7.9375]
        assert_eq!(spec.quantize(100.0), spec.max_raw());
        assert_eq!(spec.quantize(-100.0), spec.min_raw());
        assert_eq!(spec.quantize_value(100.0), spec.max_value());
        assert_eq!(spec.quantize_value(-100.0), spec.min_value());
    }

    #[test]
    fn nan_quantizes_to_zero() {
        let spec = FixedSpec::paper_default();
        assert_eq!(spec.quantize(f64::NAN), 0);
    }

    #[test]
    fn resolution_matches_frac_bits() {
        assert_eq!(FixedSpec::new(16, 0).unwrap().resolution(), 1.0);
        assert_eq!(FixedSpec::new(16, 4).unwrap().resolution(), 0.0625);
    }

    #[test]
    fn slicing_matches_manual_decomposition() {
        let slicer = BitSlicer::new(4, 4).unwrap();
        assert_eq!(slicer.slice(0), vec![0, 0, 0, 0]);
        assert_eq!(slicer.slice(0xFFFF), vec![0xF, 0xF, 0xF, 0xF]);
        assert_eq!(slicer.slice(0x1234), vec![0x4, 0x3, 0x2, 0x1]);
    }

    #[test]
    fn recombine_f64_applies_shift_weights() {
        let slicer = BitSlicer::new(4, 2).unwrap();
        // 1.0 in the low slice and 1.0 in the high slice → 1 + 16.
        assert_eq!(slicer.recombine_f64(&[1.0, 1.0]), 17.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn slice_panics_on_overflow() {
        let slicer = BitSlicer::new(4, 2).unwrap();
        let _ = slicer.slice(0x100);
    }

    #[test]
    fn full_width_slicer_handles_max() {
        let slicer = BitSlicer::new(8, 4).unwrap();
        assert_eq!(slicer.max_magnitude(), u32::MAX);
        let slices = slicer.slice(u32::MAX);
        assert_eq!(slices, vec![0xFF; 4]);
    }

    proptest! {
        #[test]
        fn quantize_error_within_half_step(
            total in 2u8..=24,
            frac_frac in 0.0f64..1.0,
            x in -1000.0f64..1000.0,
        ) {
            let frac = ((f64::from(total) - 1.0) * frac_frac) as u8;
            let spec = FixedSpec::new(total, frac).unwrap();
            let clamped = x.clamp(spec.min_value(), spec.max_value());
            let err = (spec.quantize_value(x) - clamped).abs();
            prop_assert!(err <= spec.resolution() / 2.0 + 1e-12);
        }

        #[test]
        fn quantize_is_monotonic(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let spec = FixedSpec::paper_default();
            if a <= b {
                prop_assert!(spec.quantize(a) <= spec.quantize(b));
            } else {
                prop_assert!(spec.quantize(a) >= spec.quantize(b));
            }
        }

        #[test]
        fn slice_recombine_round_trip(
            cell_bits in 1u8..=8,
            num_slices in 1u8..=4,
            raw in 0u32..=u32::MAX,
        ) {
            let slicer = BitSlicer::new(cell_bits, num_slices).unwrap();
            let magnitude = raw & slicer.max_magnitude();
            let slices: Vec<u64> =
                slicer.slice(magnitude).into_iter().map(u64::from).collect();
            prop_assert_eq!(slicer.recombine_u64(&slices), u64::from(magnitude));
            // Analog-domain recombination agrees with the integer one.
            let outs: Vec<f64> = slices.iter().map(|&s| s as f64).collect();
            let analog = slicer.recombine_f64(&outs);
            prop_assert!((analog - f64::from(magnitude)).abs() < 1e-6);
        }
    }
}
