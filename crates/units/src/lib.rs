//! Foundational numeric types shared by every crate in the GraphR
//! reproduction.
//!
//! The GraphR accelerator (HPCA 2018) computes with *analog* ReRAM crossbars:
//! values are quantised to a small number of bits per cell (4 in the paper),
//! higher precision is recovered by bit slicing, and all architectural
//! bookkeeping is done in physical units (nanoseconds, picojoules).
//! This crate provides exactly those primitives:
//!
//! * [`fixed`] — fixed-point quantisation ([`FixedSpec`]) and bit slicing
//!   ([`BitSlicer`]) used by the crossbar model,
//! * [`time`] / [`energy`] — strongly-typed [`Nanos`], [`Joules`] and
//!   [`Watts`] so a latency is never accidentally added to an energy,
//! * [`stats`] — counters, running summaries and geometric means used by the
//!   evaluation harness.
//!
//! # Examples
//!
//! ```
//! use graphr_units::{FixedSpec, Nanos, Joules};
//!
//! // The paper's 16-bit fixed point, built from four 4-bit ReRAM cells.
//! let spec = FixedSpec::new(16, 12)?;
//! let q = spec.quantize(0.8125);
//! assert_eq!(spec.dequantize(q), 0.8125);
//!
//! let cycle = Nanos::new(64.0);           // one graph-engine cycle
//! let energy = Joules::from_picojoules(1.08);
//! assert!(energy.averaged_over(cycle).as_watts() > 0.0);
//! # Ok::<(), graphr_units::FixedSpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod fixed;
pub mod stats;
pub mod time;

pub use energy::{Joules, Watts};
pub use fixed::{BitSlicer, FixedSpec, FixedSpecError};
pub use stats::{Counter, GeoMean, Summary};
pub use time::Nanos;
