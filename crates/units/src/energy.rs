//! Strongly-typed energy and power.
//!
//! The paper's headline claims are energy claims (33.82× saving vs the CPU
//! geomean), so the accounting layer keeps energy in its own type instead of
//! a bare `f64`. Per-event costs in the ReRAM literature are picojoule- to
//! nanojoule-scale (1.08 pJ per cell read, 3.91 nJ per cell write in \[44\]),
//! while platform budgets are joule-scale, so [`Joules`] stores joules and
//! offers constructors at every scale.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// An amount of energy in joules.
///
/// # Examples
///
/// ```
/// use graphr_units::{Joules, Nanos};
///
/// let per_read = Joules::from_picojoules(1.08);
/// let per_write = Joules::from_nanojoules(3.91);
/// let tile = per_read * 64.0 + per_write * 8.0;
/// assert!(tile.as_joules() > 0.0);
///
/// // Average power if that tile takes one 64 ns GE cycle:
/// let power = tile.averaged_over(Nanos::new(64.0));
/// assert!(power.as_watts() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy of `j` joules.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `j` is negative; consumed energy is
    /// non-negative.
    #[must_use]
    pub fn new(j: f64) -> Self {
        debug_assert!(j >= 0.0, "energy must be non-negative, got {j}");
        Joules(j)
    }

    /// Creates an energy from picojoules (1e-12 J).
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Joules::new(pj * 1e-12)
    }

    /// Creates an energy from nanojoules (1e-9 J).
    #[must_use]
    pub fn from_nanojoules(nj: f64) -> Self {
        Joules::new(nj * 1e-9)
    }

    /// Creates an energy from microjoules (1e-6 J).
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        Joules::new(uj * 1e-6)
    }

    /// Creates an energy from millijoules (1e-3 J).
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Joules::new(mj * 1e-3)
    }

    /// The raw value in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value converted to picojoules.
    #[must_use]
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// The value converted to millijoules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Whether this energy is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The dimensionless ratio of two energies (`self / other`).
    ///
    /// This is the primitive behind every "energy saving" number in the
    /// evaluation harness.
    #[must_use]
    pub fn ratio(self, other: Joules) -> f64 {
        self.0 / other.0
    }

    /// The average power drawn if this energy is spent over `duration`.
    #[must_use]
    pub fn averaged_over(self, duration: Nanos) -> Watts {
        Watts::new(self.0 / duration.as_secs())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules::new(self.0 * rhs)
    }
}

impl Mul<Joules> for f64 {
    type Output = Joules;
    fn mul(self, rhs: Joules) -> Joules {
        rhs * self
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules::new(self.0 / rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, Add::add)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j >= 1.0 {
            write!(f, "{j:.3} J")
        } else if j >= 1e-3 {
            write!(f, "{:.3} mJ", j * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3} uJ", j * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.3} nJ", j * 1e9)
        } else {
            write!(f, "{:.3} pJ", j * 1e12)
        }
    }
}

/// Power in watts, produced when dividing [`Joules`] by time or when
/// modelling a platform's TDP.
///
/// # Examples
///
/// ```
/// use graphr_units::{Nanos, Watts};
///
/// let tdp = Watts::new(85.0);
/// let burned = tdp.over(Nanos::from_millis(2.0));
/// assert_eq!(burned.as_millijoules(), 170.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Creates a power of `w` watts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` is negative.
    #[must_use]
    pub fn new(w: f64) -> Self {
        debug_assert!(w >= 0.0, "power must be non-negative, got {w}");
        Watts(w)
    }

    /// The raw value in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// The energy consumed by drawing this power for `duration`.
    #[must_use]
    pub fn over(self, duration: Nanos) -> Joules {
        Joules::new(self.0 * duration.as_secs())
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts::new(self.0 * rhs)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} W", self.0)
        } else {
            write!(f, "{:.3} mW", self.0 * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_constructors_round_trip() {
        assert_eq!(Joules::from_picojoules(1.0).as_joules(), 1e-12);
        assert_eq!(Joules::from_nanojoules(1.0).as_joules(), 1e-9);
        assert_eq!(Joules::from_microjoules(1.0).as_joules(), 1e-6);
        assert_eq!(Joules::from_millijoules(1.0).as_joules(), 1e-3);
        assert!((Joules::new(2.5e-12).as_picojoules() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Joules::new(3.0);
        let b = Joules::new(1.0);
        assert_eq!((a + b).as_joules(), 4.0);
        assert_eq!((a - b).as_joules(), 2.0);
        assert_eq!((a * 2.0).as_joules(), 6.0);
        assert_eq!((a / 3.0).as_joules(), 1.0);
        assert_eq!((2.0 * b).as_joules(), 2.0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(100.0).over(Nanos::from_secs(2.0));
        assert_eq!(e.as_joules(), 200.0);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(10.0).averaged_over(Nanos::from_secs(5.0));
        assert_eq!(p.as_watts(), 2.0);
    }

    #[test]
    fn ratio_is_energy_saving() {
        assert_eq!(Joules::new(33.82).ratio(Joules::new(1.0)), 33.82);
    }

    #[test]
    fn display_chooses_si_prefix() {
        assert_eq!(Joules::new(2.0).to_string(), "2.000 J");
        assert_eq!(Joules::from_millijoules(2.0).to_string(), "2.000 mJ");
        assert_eq!(Joules::from_microjoules(2.0).to_string(), "2.000 uJ");
        assert_eq!(Joules::from_nanojoules(2.0).to_string(), "2.000 nJ");
        assert_eq!(Joules::from_picojoules(2.0).to_string(), "2.000 pJ");
        assert_eq!(Watts::new(85.0).to_string(), "85.000 W");
        assert_eq!(Watts::new(0.5).to_string(), "500.000 mW");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=3).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total.as_joules(), 6.0);
    }
}
