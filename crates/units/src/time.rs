//! Strongly-typed simulated time.
//!
//! All latencies in the GraphR model are expressed in nanoseconds, the
//! natural unit for ReRAM access times (tens of nanoseconds per the NVSim
//! numbers the paper uses). [`Nanos`] is a thin `f64` newtype so that timing
//! arithmetic stays readable while the type system prevents mixing time with
//! energy.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration of simulated time in nanoseconds.
///
/// `Nanos` supports the arithmetic a timing model needs (addition,
/// subtraction, scaling by a count) and formats itself with an
/// automatically chosen SI prefix.
///
/// # Examples
///
/// ```
/// use graphr_units::Nanos;
///
/// let write = Nanos::new(50.88);
/// let read = Nanos::new(29.31);
/// let tile = write + read;
/// assert!(tile > read);
/// assert_eq!((read * 2.0).as_nanos(), 58.62);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Nanos(f64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0.0);

    /// Creates a duration of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ns` is negative or NaN; simulated time
    /// never runs backwards.
    #[must_use]
    pub fn new(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "durations must be non-negative, got {ns}");
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Nanos::new(us * 1e3)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Nanos::new(ms * 1e6)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub fn from_secs(s: f64) -> Self {
        Nanos::new(s * 1e9)
    }

    /// The raw value in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// The value converted to seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-9
    }

    /// The value converted to milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the larger of two durations.
    ///
    /// Used by pipeline models where a stage's latency is the maximum of its
    /// overlapped components.
    #[must_use]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Whether this duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The dimensionless ratio of two durations (`self / other`).
    ///
    /// This is the primitive behind every "speedup" number in the
    /// evaluation harness.
    #[must_use]
    pub fn ratio(self, other: Nanos) -> f64 {
        self.0 / other.0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos::new(self.0 * rhs)
    }
}

impl Mul<Nanos> for f64 {
    type Output = Nanos;
    fn mul(self, rhs: Nanos) -> Nanos {
        rhs * self
    }
}

impl Div<f64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: f64) -> Nanos {
        Nanos::new(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1e9 {
            write!(f, "{:.3} s", ns * 1e-9)
        } else if ns >= 1e6 {
            write!(f, "{:.3} ms", ns * 1e-6)
        } else if ns >= 1e3 {
            write!(f, "{:.3} us", ns * 1e-3)
        } else {
            write!(f, "{ns:.3} ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_round_trip() {
        assert_eq!(Nanos::from_secs(1.0).as_nanos(), 1e9);
        assert_eq!(Nanos::from_millis(2.0).as_nanos(), 2e6);
        assert_eq!(Nanos::from_micros(3.0).as_nanos(), 3e3);
        assert_eq!(Nanos::new(5e8).as_secs(), 0.5);
        assert_eq!(Nanos::new(5e5).as_millis(), 0.5);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Nanos::new(10.0);
        let b = Nanos::new(4.0);
        assert_eq!((a + b).as_nanos(), 14.0);
        assert_eq!((a - b).as_nanos(), 6.0);
        assert_eq!((a * 3.0).as_nanos(), 30.0);
        assert_eq!((a / 2.0).as_nanos(), 5.0);
        assert_eq!((2.0 * a).as_nanos(), 20.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Nanos::ZERO;
        t += Nanos::new(64.0);
        t += Nanos::new(64.0);
        assert_eq!(t.as_nanos(), 128.0);
    }

    #[test]
    fn min_max_pick_extremes() {
        let a = Nanos::new(1.0);
        let b = Nanos::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Nanos = (1..=4).map(|i| Nanos::new(f64::from(i))).sum();
        assert_eq!(total.as_nanos(), 10.0);
    }

    #[test]
    fn ratio_is_speedup() {
        assert_eq!(Nanos::new(100.0).ratio(Nanos::new(25.0)), 4.0);
    }

    #[test]
    fn display_chooses_si_prefix() {
        assert_eq!(Nanos::new(12.5).to_string(), "12.500 ns");
        assert_eq!(Nanos::new(12_500.0).to_string(), "12.500 us");
        assert_eq!(Nanos::new(12_500_000.0).to_string(), "12.500 ms");
        assert_eq!(Nanos::new(1.25e9).to_string(), "1.250 s");
    }

    #[test]
    fn zero_is_zero() {
        assert!(Nanos::ZERO.is_zero());
        assert!(!Nanos::new(0.1).is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    #[cfg(debug_assertions)]
    fn negative_duration_panics_in_debug() {
        let _ = Nanos::new(-1.0);
    }
}
