//! Geometry-invariance properties: the architectural knobs (crossbar size,
//! crossbars per GE, GE count, block size) change *time and energy*, never
//! *results*. This is the deepest invariant of the simulator — the
//! functional datapath and the cost accounting must be fully decoupled.

use graphr_repro::core::sim::{run_pagerank, run_sssp, PageRankOptions, TraversalOptions};
use graphr_repro::core::GraphRConfig;
use graphr_repro::graph::generators::rmat::Rmat;
use proptest::prelude::*;

fn geometry_config(
    c_pow: u32,
    tiles_per_ge: usize,
    num_ges: usize,
    block_strips: Option<usize>,
) -> GraphRConfig {
    let crossbar = 1usize << c_pow;
    let mut builder = GraphRConfig::builder()
        .crossbar_size(crossbar)
        .crossbars_per_ge(tiles_per_ge * 4) // 4 slices per logical tile
        .num_ges(num_ges);
    if let Some(strips) = block_strips {
        let strip_width = crossbar * tiles_per_ge * num_ges;
        builder = builder.block_vertices(strip_width * strips);
    }
    builder.build().expect("generated geometry is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SSSP distances are identical across arbitrary geometries (and equal
    /// to the gold reference, transitively via the correctness suite).
    #[test]
    fn sssp_results_are_geometry_invariant(
        c_pow in 2u32..=4,
        tiles in 1usize..=4,
        ges in 1usize..=4,
        strips in proptest::option::of(1usize..=3),
        seed in 0u64..12,
    ) {
        let g = Rmat::new(150, 900)
            .seed(seed)
            .max_weight(16)
            .self_loops(false)
            .generate();
        let reference = run_sssp(
            &g,
            &GraphRConfig::default(),
            &TraversalOptions::default(),
        )
        .expect("reference run");
        let config = geometry_config(c_pow, tiles, ges, strips);
        let run = run_sssp(&g, &config, &TraversalOptions::default()).expect("run");
        prop_assert_eq!(&run.distances, &reference.distances);
        // Cost accounting stays self-consistent: every edge loads at least
        // once per round it is touched, and energy is strictly positive.
        prop_assert!(run.metrics.total_energy().as_joules() > 0.0);
        prop_assert!(run.metrics.total_time().as_nanos() > 0.0);
    }

    /// PageRank values are identical across geometries: quantisation
    /// happens per value, never per tile boundary.
    #[test]
    fn pagerank_results_are_geometry_invariant(
        c_pow in 2u32..=4,
        tiles in 1usize..=4,
        ges in 1usize..=4,
        strips in proptest::option::of(1usize..=3),
        seed in 0u64..12,
    ) {
        let g = Rmat::new(120, 700).seed(seed).self_loops(false).generate();
        let opts = PageRankOptions {
            max_iterations: 6,
            tolerance: 0.0,
            ..PageRankOptions::default()
        };
        let reference =
            run_pagerank(&g, &GraphRConfig::default(), &opts).expect("reference run");
        let config = geometry_config(c_pow, tiles, ges, strips);
        let run = run_pagerank(&g, &config, &opts).expect("run");
        prop_assert_eq!(&run.values, &reference.values);
        // Same functional work ⇒ same edge loads per MAC iteration.
        prop_assert_eq!(
            run.metrics.events.edges_loaded,
            reference.metrics.events.edges_loaded
        );
    }
}
