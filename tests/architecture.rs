//! Integration tests of the architectural model: geometry invariants,
//! design-choice directions (the paper's §3.3 arguments), and the error
//! tolerance claims of §1.

use graphr_repro::core::config::StreamingOrder;
use graphr_repro::core::sim::{run_pagerank, run_sssp, PageRankOptions, TraversalOptions};
use graphr_repro::core::{Fidelity, GraphRConfig};
use graphr_repro::graph::algorithms::pagerank::{pagerank, PageRankParams};
use graphr_repro::graph::algorithms::sssp::dijkstra;
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::EdgeList;
use graphr_repro::reram::NoiseModel;

fn graph() -> EdgeList {
    Rmat::new(400, 2400)
        .seed(17)
        .max_weight(16)
        .self_loops(false)
        .generate()
}

fn pr_opts(iters: usize) -> PageRankOptions {
    PageRankOptions {
        max_iterations: iters,
        tolerance: 0.0,
        ..PageRankOptions::default()
    }
}

#[test]
fn paper_configuration_geometry() {
    let c = GraphRConfig::default();
    // §5.2: crossbar size 8, 32 crossbars/GE, 64 GEs.
    assert_eq!(c.crossbar_size, 8);
    assert_eq!(c.crossbars_per_ge, 32);
    assert_eq!(c.num_ges, 64);
    // 16-bit data over 4-bit cells gangs 4 crossbars per logical tile.
    assert_eq!(c.arrays_per_tile(), 4);
    assert_eq!(c.tiles_per_ge(), 8);
    // One subgraph window covers C × (C × tiles × G) of the matrix.
    assert_eq!(c.strip_width(), 4096);
    assert_eq!(c.chunk_height(), 8);
}

#[test]
fn column_major_beats_row_major() {
    // §3.3's argument: row-major needs more RegO capacity and more
    // register writes (and, with per-chunk spills, more time).
    let g = graph();
    let col = GraphRConfig::default();
    let row = GraphRConfig::builder()
        .order(StreamingOrder::RowMajor)
        .build()
        .expect("valid");
    let rc = run_pagerank(&g, &col, &pr_opts(3)).expect("run");
    let rr = run_pagerank(&g, &row, &pr_opts(3)).expect("run");
    assert_eq!(rc.values, rr.values, "order must not change results");
    assert!(rr.metrics.events.register_writes > rc.metrics.events.register_writes);
    assert!(rr.metrics.events.rego_capacity_required >= rc.metrics.events.rego_capacity_required);
    assert!(rr.metrics.total_time() > rc.metrics.total_time());
}

#[test]
fn skipping_empty_windows_pays_off() {
    let g = graph();
    let skip = GraphRConfig::default();
    let noskip = GraphRConfig::builder()
        .skip_empty(false)
        .build()
        .expect("valid");
    let rs = run_pagerank(&g, &skip, &pr_opts(3)).expect("run");
    let rn = run_pagerank(&g, &noskip, &pr_opts(3)).expect("run");
    assert_eq!(rs.values, rn.values);
    assert!(
        rn.metrics.total_time() > rs.metrics.total_time(),
        "forced full scans must cost time: {} vs {}",
        rn.metrics.total_time(),
        rs.metrics.total_time()
    );
}

#[test]
fn pipelining_hides_programming() {
    let g = graph();
    let piped = GraphRConfig::default();
    let serial = GraphRConfig::builder()
        .pipelined(false)
        .build()
        .expect("valid");
    let rp = run_pagerank(&g, &piped, &pr_opts(3)).expect("run");
    let rs = run_pagerank(&g, &serial, &pr_opts(3)).expect("run");
    assert_eq!(rp.values, rs.values);
    assert!(rs.metrics.total_time() > rp.metrics.total_time());
    // Energy is unchanged — pipelining moves time, not charge.
    assert_eq!(rs.metrics.total_energy(), rp.metrics.total_energy());
}

#[test]
fn more_graph_engines_scale_mac_throughput() {
    let g = graph();
    let mut times = Vec::new();
    for ges in [8usize, 32, 128] {
        let config = GraphRConfig::builder().num_ges(ges).build().expect("valid");
        let run = run_pagerank(&g, &config, &pr_opts(3)).expect("run");
        times.push(run.metrics.total_time());
    }
    assert!(times[0] > times[1], "8→32 GEs must speed up");
    assert!(times[1] >= times[2], "32→128 GEs must not slow down");
}

#[test]
fn one_percent_noise_preserves_ranking_quality() {
    // §1: iterative algorithms tolerate analog imprecision. At the 1%
    // programming accuracy the paper cites, the top of the ranking
    // survives.
    let g = graph();
    let gold = pagerank(
        &g.to_csr(),
        &PageRankParams {
            max_iterations: 15,
            tolerance: 0.0,
            ..PageRankParams::default()
        },
    );
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(16)
        .num_ges(4)
        .fidelity(Fidelity::Analog)
        .noise(NoiseModel::one_percent(13))
        .build()
        .expect("valid");
    let run = run_pagerank(&g, &config, &pr_opts(15)).expect("run");
    let top = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
        idx.truncate(10);
        idx
    };
    let gold_top = top(&gold.ranks);
    let sim_top = top(&run.values);
    let overlap = gold_top.iter().filter(|v| sim_top.contains(v)).count();
    assert!(
        overlap >= 7,
        "only {overlap}/10 of the top ranking survived 1% noise"
    );
}

#[test]
fn sssp_stays_exact_under_moderate_noise() {
    // Integer distance labels re-quantise every round, so small analog
    // perturbations are absorbed — BFS/SSSP are the paper's "resilient
    // integer algorithms".
    let g = Rmat::new(100, 500)
        .seed(8)
        .max_weight(8)
        .self_loops(false)
        .generate();
    let gold = dijkstra(&g.to_csr(), 0);
    let config = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(16)
        .num_ges(4)
        .fidelity(Fidelity::Analog)
        .noise(NoiseModel::Gaussian {
            sigma_rel: 0.002,
            seed: 3,
        })
        .build()
        .expect("valid");
    let run = run_sssp(&g, &config, &TraversalOptions::default()).expect("run");
    assert_eq!(run.distances, gold.distances);
}

#[test]
fn energy_breakdown_is_programming_dominated() {
    // The paper's conservative per-cell write energy (3.91 nJ) makes edge
    // loading the dominant energy consumer for MAC scans — the reason
    // GraphR's energy advantage shrinks on sparse graphs (Figure 21).
    let g = graph();
    let run = run_pagerank(&g, &GraphRConfig::default(), &pr_opts(5)).expect("run");
    let (name, _) = run.metrics.energy.dominant().expect("nonzero energy");
    assert_eq!(name, "program");
}

#[test]
fn traversal_time_scales_with_frontier_not_graph() {
    // A path graph: each SSSP round activates one vertex; total GraphR time
    // must be orders of magnitude below a dense scan of every window.
    let n = 2048;
    let g = graphr_repro::graph::generators::structured::path(n);
    let config = GraphRConfig::default();
    let run = run_sssp(&g, &config, &TraversalOptions::default()).expect("run");
    // Every vertex becomes active exactly once (including the sink, whose
    // activation finds no outgoing edges).
    assert_eq!(run.metrics.events.rows_activated, n as u64);
    // Each round does ~1 row activation; with pipelined 256 ns cycles the
    // whole run stays well under a millisecond.
    assert!(
        run.metrics.total_time().as_millis() < 2.0,
        "frontier-proportional execution broken: {}",
        run.metrics.total_time()
    );
}
