//! Integration tests of the service-level observability subsystem: the
//! deterministic log₂ [`Histogram`]'s percentiles against a sorted-`Vec`
//! nearest-rank reference (proptested), the serve layer's simulated
//! service clock (latency = wait + service exactly, FIFO waves start in
//! non-decreasing simulated order, a one-query queue never waits), the
//! determinism contract for the service histograms — the collected
//! registry renders **byte-identical** across the serial engine, the
//! parallel engine, and a one-node cluster, with coalescing on or off —
//! and lane attribution against the trace: each [`Metrics::lanes`] row's
//! frontier accounting must equal what its `Lane` trace events recorded.

use std::sync::Arc;

use graphr_repro::core::multinode::MultiNodeConfig;
use graphr_repro::core::sim::{run_bfs_lanes_with, LaneTraversalOptions, TraversalOptions};
use graphr_repro::core::stats::{bucket_bound, bucket_index, Histogram, StatsRegistry};
use graphr_repro::core::trace::{TraceData, TraceHandle, TraceSink};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::GraphHandle;
use graphr_repro::runtime::{ExecMode, Job, JobSpec, ServeConfig, Server, Session};
use proptest::prelude::*;

fn small_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

fn rmat_handle() -> GraphHandle {
    GraphHandle::new(
        "rmat-250",
        Rmat::new(250, 1500).seed(42).max_weight(9).generate(),
    )
}

fn bfs(handle: &GraphHandle, source: u32) -> Job {
    Job::new(
        handle.clone(),
        JobSpec::Bfs(TraversalOptions {
            source,
            ..TraversalOptions::default()
        }),
    )
}

// ------------------------------------------------------------ histogram

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The integer-state histogram's percentile contract against the
    /// obvious reference: sort the samples, take the nearest-rank one,
    /// resolve it to its bucket's inclusive upper bound capped at the
    /// exact maximum.
    #[test]
    fn percentiles_match_sorted_reference(
        values in proptest::collection::vec(0u64..(1u64 << 48), 1..200),
        p in 1u8..=100,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((values.len() as u64 * u64::from(p)).div_ceil(100)).max(1);
        let sample = sorted[rank as usize - 1];
        let expected = bucket_bound(bucket_index(sample)).min(h.max());
        prop_assert_eq!(h.percentile(p), expected);
        // The resolved bound never under-reports the sample it stands
        // for, and never exceeds the largest sample seen.
        prop_assert!(h.percentile(p) >= sample);
        prop_assert!(h.percentile(p) <= h.max());
        // Exact aggregates ride alongside the buckets.
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    /// Merging two histograms must equal recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..(1u64 << 32), 0..60),
        b in proptest::collection::vec(0u64..(1u64 << 32), 0..60),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut both = Histogram::new();
        for &v in a.iter().chain(&b) {
            both.record(v);
        }
        prop_assert_eq!(merged, both);
    }
}

// ------------------------------------------------- simulated service clock

/// With coalescing off every query runs as its own wave, so the service
/// clock is a plain FIFO: query *i*'s wait is exactly the sum of the
/// service times before it, waves start in non-decreasing simulated
/// order, and the latency identity holds to the nanosecond.
#[test]
fn fifo_waves_price_wait_as_prior_service() {
    let handle = rmat_handle();
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig {
        coalesce: false,
        ..ServeConfig::default()
    });
    for i in 0..5u32 {
        server.enqueue(bfs(&handle, i * 7)).expect("admit");
    }
    let results = server.drain(&session);
    assert_eq!(results.len(), 5);
    let mut prior_service = 0u64;
    let mut prev_start = 0u64;
    for result in &results {
        assert!(result.report.is_ok(), "query must run");
        assert_eq!(
            result.latency_ns,
            result.wait_ns + result.service_ns,
            "latency must be exactly wait + service"
        );
        assert!(result.service_ns > 0, "a real run takes simulated time");
        // All five arrived before the drain, at simulated time 0.
        assert_eq!(result.arrival_ns, 0);
        assert_eq!(
            result.wait_ns, prior_service,
            "FIFO wait must equal the service time already dispensed"
        );
        let start = result.arrival_ns + result.wait_ns;
        assert!(
            start >= prev_start,
            "FIFO waves must start in non-decreasing simulated order"
        );
        prev_start = start;
        prior_service += result.service_ns;
    }
    // The server's clock dispensed exactly the summed service time.
    assert_eq!(server.clock_ns(), prior_service);
    let latency = server.latency();
    assert_eq!(latency.latency.count(), 5);
    assert_eq!(latency.wait.min(), 0);
    assert_eq!(
        latency.wait.max(),
        results.last().expect("five results").wait_ns
    );
}

/// A queue holding a single query has nothing to wait behind: zero wait,
/// latency equal to service, and the occupancy histogram records one
/// single-lane wave.
#[test]
fn single_query_queue_never_waits() {
    let handle = rmat_handle();
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    server.enqueue(bfs(&handle, 0)).expect("admit");
    let results = server.drain(&session);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].wait_ns, 0, "a lone query must not wait");
    assert_eq!(results[0].latency_ns, results[0].service_ns);
    let latency = server.latency();
    assert_eq!(latency.wait.max(), 0);
    assert_eq!(latency.occupancy.count(), 1);
    assert_eq!(latency.occupancy.max(), 1);
}

/// Failed queries advance no simulated time and enter no histogram.
#[test]
fn failed_queries_leave_the_clock_and_histograms_alone() {
    let handle = rmat_handle();
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    // Source beyond the vertex count fails validation before any scan.
    server.enqueue(bfs(&handle, 1_000_000)).expect("admitted");
    let results = server.drain(&session);
    assert!(results[0].report.is_err(), "out-of-range source must fail");
    assert_eq!(results[0].service_ns, 0);
    assert_eq!(results[0].latency_ns, 0);
    assert_eq!(server.clock_ns(), 0, "failures dispense no simulated time");
    assert_eq!(server.latency().latency.count(), 0);
}

// --------------------------------------------- engine-identity contract

/// Runs the same five-query batch on one engine configuration and
/// returns the collected registry's Prometheus rendering.
fn rendered_registry(mode: ExecMode, cluster: Option<usize>, coalesce: bool) -> String {
    let handle = rmat_handle();
    let mut session = Session::new(small_config());
    if let Some(nodes) = cluster {
        session = session.with_cluster(MultiNodeConfig::pcie_cluster(nodes));
    }
    let mut server = Server::new(ServeConfig {
        coalesce,
        ..ServeConfig::default()
    });
    for i in 0..5u32 {
        server
            .enqueue(bfs(&handle, i * 7).with_mode(mode))
            .expect("admit");
    }
    for result in server.drain(&session) {
        assert!(result.report.is_ok(), "every query must run");
    }
    let mut registry = StatsRegistry::new();
    server.collect_stats(&mut registry);
    assert!(!registry.is_empty());
    registry.render_prometheus()
}

/// The tentpole determinism contract: the service-level histograms are
/// simulated facts, so the full registry rendering — every bucket count,
/// sum, and percentile — must be byte-identical across the serial
/// engine, the parallel engine, and a one-node cluster, whether waves
/// are coalesced or run solo.
#[test]
fn serve_registry_bit_identical_across_engines() {
    for coalesce in [true, false] {
        let serial = rendered_registry(ExecMode::Serial, None, coalesce);
        let parallel = rendered_registry(ExecMode::Parallel, None, coalesce);
        let one_node = rendered_registry(ExecMode::Parallel, Some(1), coalesce);
        assert_eq!(
            serial, parallel,
            "serial and parallel registries must render byte-identically (coalesce={coalesce})"
        );
        assert_eq!(
            serial, one_node,
            "a one-node cluster's registry must render byte-identically (coalesce={coalesce})"
        );
    }
    // And the two scheduling modes genuinely differ — the contract is
    // not vacuous.
    assert_ne!(
        rendered_registry(ExecMode::Serial, None, true),
        rendered_registry(ExecMode::Serial, None, false),
        "coalesced and solo schedules have different wave accounting"
    );
}

// ------------------------------------------------ lane/trace consistency

/// [`Metrics::lanes`] against the telemetry: a fused run's per-lane
/// attribution must be recoverable from its `Lane` trace events — the
/// events' frontier populations sum to `frontier_total`, their maximum
/// is `frontier_peak`, and their count is the lane's active-iteration
/// count.
#[test]
fn lane_attribution_matches_traced_frontiers() {
    use graphr_repro::core::exec::{ScanEngine, StreamingExecutor};

    let graph = Rmat::new(250, 1500).seed(42).max_weight(9).generate();
    let config = small_config();
    let tiled = TiledGraph::preprocess(&graph, &config).expect("tiles");
    let opts = LaneTraversalOptions::new(vec![0, 5, 11, 42]);
    let sink = TraceSink::shared();
    let mut exec = StreamingExecutor::new(&tiled, &config, opts.spec);
    exec.set_trace(Some(TraceHandle::new(Arc::clone(&sink))));
    let run = run_bfs_lanes_with(&graph, &mut exec, &opts).expect("fused run");
    run.metrics
        .validate()
        .expect("fused metrics are consistent");
    assert_eq!(run.metrics.lanes.len(), 4);

    let mut totals = [0u64; 4];
    let mut peaks = [0u64; 4];
    let mut events = [0u64; 4];
    for event in sink.events() {
        if let TraceData::Lane { lane, frontier, .. } = event.data {
            let lane = lane as usize;
            totals[lane] += frontier;
            peaks[lane] = peaks[lane].max(frontier);
            events[lane] += 1;
        }
    }
    for (q, row) in run.metrics.lanes.iter().enumerate() {
        assert_eq!(
            row.frontier_total, totals[q],
            "lane {q}: trace frontiers must sum to the attribution total"
        );
        assert_eq!(
            row.frontier_peak, peaks[q],
            "lane {q}: the largest traced frontier must be the peak"
        );
        assert_eq!(
            row.iterations, events[q],
            "lane {q}: one Lane event per active iteration"
        );
    }
}
