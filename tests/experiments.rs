//! Smoke tests of the evaluation harness at a tiny scale: every figure
//! generator runs end to end, and the headline *shape* claims of the
//! paper's §5 hold — GraphR wins against every platform on the geometric
//! mean, the MAC-pattern best case lands on the densest graph, and
//! performance falls with density.

use graphr_bench::apps::{run_app, App};
use graphr_bench::figures;
use graphr_bench::ExperimentContext;
use graphr_graph::DatasetSpec;
use graphr_units::GeoMean;

fn ctx() -> ExperimentContext {
    ExperimentContext::with_scale(0.002)
}

#[test]
fn figure17_shape_holds() {
    let ctx = ctx();
    let (runs, text) = figures::figure17(&ctx);
    assert_eq!(runs.len(), 25, "4 apps × 6 datasets + CF");
    assert!(text.contains("geomean"));
    // Headline: GraphR beats the CPU on the geometric mean...
    let gm: GeoMean = runs.iter().map(|r| r.speedup_vs_cpu()).collect();
    assert!(gm.value().unwrap() > 1.0, "GraphR must win on geomean");
    // ...and the single best cell is a MAC-pattern app on one of the two
    // densest datasets (the paper's 132.67× is SpMV on WikiVote; at the
    // tiny test scale WV sits at the generator's minimum-size clamp, so
    // Slashdot may edge it out).
    let best = runs
        .iter()
        .max_by(|a, b| a.speedup_vs_cpu().total_cmp(&b.speedup_vs_cpu()))
        .unwrap();
    assert!(
        best.dataset == "WV" || best.dataset == "SD",
        "best cell on {} instead of a dense dataset",
        best.dataset
    );
    assert!(matches!(best.app, App::Spmv | App::PageRank));
    // Every cell wins (the paper's minimum is 2.40×).
    for r in &runs {
        assert!(
            r.speedup_vs_cpu() > 1.0,
            "{:?} on {} lost to the CPU",
            r.app,
            r.dataset
        );
    }
}

#[test]
fn figure18_energy_beats_speedup() {
    let ctx = ctx();
    let (runs, _) = figures::figure18(&ctx);
    let speed: GeoMean = runs.iter().map(|r| r.speedup_vs_cpu()).collect();
    let energy: GeoMean = runs.iter().map(|r| r.energy_saving_vs_cpu()).collect();
    // The paper's energy geomean (33.8×) exceeds its speedup geomean
    // (16.0×): ReRAM has no static power while the CPU burns TDP.
    assert!(
        energy.value().unwrap() > speed.value().unwrap(),
        "energy saving should exceed speedup"
    );
}

#[test]
fn figure19_graphr_beats_gpu_modestly() {
    let ctx = ctx();
    let (runs, text) = figures::figure19(&ctx);
    assert_eq!(runs.len(), 3);
    assert!(text.contains("GPU"));
    for r in &runs {
        let perf = r.gpu.time.ratio(r.graphr.time);
        let energy = r.gpu.energy.ratio(r.graphr.energy);
        assert!(perf > 1.0, "{:?}: GraphR must beat the GPU", r.app);
        assert!(
            energy > perf,
            "{:?}: the energy gap must exceed the performance gap",
            r.app
        );
    }
}

#[test]
fn figure20_graphr_beats_pim() {
    let ctx = ctx();
    let (runs, _) = figures::figure20(&ctx);
    assert_eq!(runs.len(), 6);
    let gm: GeoMean = runs
        .iter()
        .map(|r| r.pim.time.ratio(r.graphr.time))
        .collect();
    assert!(
        gm.value().unwrap() > 1.0,
        "GraphR must beat Tesseract on the geomean"
    );
}

#[test]
fn figure21_speedup_declines_with_sparsity() {
    let ctx = ctx();
    let (runs, text) = figures::figure21(&ctx);
    assert!(text.contains("density"));
    // PageRank speedups across WV, SD, AZ, WG, LJ (descending density):
    // the paper's trend is a decline; require the broad direction — the
    // densest dataset must beat the sparsest by a clear margin.
    let pr: Vec<f64> = runs
        .iter()
        .filter(|r| r.app == App::PageRank)
        .map(|r| r.speedup_vs_cpu())
        .collect();
    assert_eq!(pr.len(), 5);
    assert!(
        pr[0] > pr[4] * 1.5,
        "densest (WV: {:.2}) must clearly beat sparsest (LJ: {:.2})",
        pr[0],
        pr[4]
    );
}

#[test]
fn iterations_match_across_platforms() {
    // The comparison is apples-to-apples: the accelerator and the software
    // baseline run the same synchronous rounds.
    let ctx = ctx();
    let spec = DatasetSpec::amazon();
    let bfs = run_app(&ctx, App::Bfs, &spec);
    let graph = ctx.graph(&spec);
    let sw = graphr_gridgraph::engine::GridEngine::with_auto_partitions(&graph)
        .bfs(graphr_bench::apps::traversal_source(&graph));
    let diff = (sw.stats.num_iterations() as i64 - bfs.iterations as i64).abs();
    assert!(diff <= 1, "BFS round counts diverged by {diff}");
}

#[test]
fn tables_render() {
    let ctx = ctx();
    assert!(figures::table1().contains("GraphR"));
    assert!(figures::table2().contains("ParallelAddOp"));
    assert!(figures::table3(&ctx).contains("Netflix"));
}

#[test]
fn extension_reports_render_and_self_check() {
    let ctx = ctx();
    // wcc_extension internally asserts GraphR labels equal union-find.
    let wcc = graphr_bench::ablations::wcc_extension(&ctx);
    assert!(wcc.contains("components"));
    let order = graphr_bench::ablations::streaming_order(&ctx);
    assert!(order.contains("RegO"));
}
