//! Property tests pinning [`FrontierMask`] to its executable
//! specification: a plain `Vec<bool>` mutated by the same operation
//! sequence. Every observation the stack makes of a mask — `get`, the
//! O(1) popcount `len`, the set-bit iterator, word-level range queries,
//! the summary level, and word deltas between two masks — must agree
//! with the dense reference bit for bit.
//!
//! [`FrontierMask`]: graphr_repro::core::exec::mask::FrontierMask

use graphr_repro::core::exec::lanes::{LaneFrontier, MAX_LANES};
use graphr_repro::core::exec::mask::{FrontierDelta, FrontierMask, SUMMARY_SPAN, WORD_BITS};
use proptest::prelude::*;

/// Applies one encoded op (0 = set, 1 = clear, 2 = set then clear — a
/// transient vertex) to both representations, checking the
/// changed-report on the way.
fn apply(mask: &mut FrontierMask, dense: &mut [bool], op: u8, v: usize) {
    let n = dense.len();
    if n == 0 {
        return;
    }
    let v = v % n;
    match op % 3 {
        0 => {
            let changed = mask.set(v);
            assert_eq!(changed, !dense[v], "set({v}) changed-report");
            dense[v] = true;
        }
        1 => {
            let changed = mask.clear(v);
            assert_eq!(changed, dense[v], "clear({v}) changed-report");
            dense[v] = false;
        }
        _ => {
            mask.set(v);
            mask.clear(v);
            dense[v] = false;
        }
    }
}

/// Every way the stack observes a mask, checked against the dense
/// reference.
fn assert_equivalent(mask: &FrontierMask, dense: &[bool]) {
    let n = dense.len();
    assert_eq!(mask.num_vertices(), n);
    assert_eq!(mask.to_vec(), dense);
    assert_eq!(mask.len(), dense.iter().filter(|&&a| a).count());
    assert_eq!(mask.is_empty(), dense.iter().all(|&a| !a));
    let iterated: Vec<usize> = mask.iter().collect();
    let expected: Vec<usize> = (0..n).filter(|&v| dense[v]).collect();
    assert_eq!(iterated, expected, "iter() must yield set bits ascending");
    // The summary level is exactly the nonzero-word map.
    for w in 0..mask.num_words() {
        let word_live = dense[w * WORD_BITS..((w + 1) * WORD_BITS).min(n)]
            .iter()
            .any(|&a| a);
        assert_eq!(mask.word(w) != 0, word_live, "word {w} liveness");
        assert_eq!(
            mask.summary_word(w / WORD_BITS) >> (w % WORD_BITS) & 1 == 1,
            word_live,
            "summary bit for word {w}"
        );
    }
    // Out-of-range reads are inert.
    assert!(!mask.get(n));
    assert_eq!(mask.word(mask.num_words()), 0);
    assert_eq!(mask.summary_word(n / SUMMARY_SPAN + 1), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of set/clear ops leaves mask and reference
    /// observationally identical, at every probe granularity.
    #[test]
    fn mask_tracks_dense_reference_under_random_ops(
        n in 0usize..600,
        ops in proptest::collection::vec((0u8..3, 0usize..600), 0..120),
    ) {
        let mut mask = FrontierMask::new(n);
        let mut dense = vec![false; n];
        for &(op, v) in &ops {
            apply(&mut mask, &mut dense, op, v);
        }
        assert_equivalent(&mask, &dense);
        prop_assert_eq!(FrontierMask::from_slice(&dense), mask);
    }

    /// Word-level range queries agree with dense slice scans for
    /// arbitrary (even degenerate or clamped) ranges.
    #[test]
    fn range_queries_match_dense_scans(
        n in 1usize..600,
        ops in proptest::collection::vec((0u8..3, 0usize..600), 0..80),
        lo in 0usize..700,
        len in 0usize..700,
    ) {
        let mut mask = FrontierMask::new(n);
        let mut dense = vec![false; n];
        for &(op, v) in &ops {
            apply(&mut mask, &mut dense, op, v);
        }
        let hi = lo + len;
        let slice = &dense[lo.min(n)..hi.min(n)];
        prop_assert_eq!(mask.any_in_range(lo, hi), slice.iter().any(|&a| a));
        let (any, words) = mask.any_in_range_counted(lo, hi);
        prop_assert_eq!(any, slice.iter().any(|&a| a));
        prop_assert!(words as usize <= len / WORD_BITS + 2, "word-level, not per-vertex");
        prop_assert_eq!(
            mask.count_range(lo, hi),
            slice.iter().filter(|&&a| a).count() as u64
        );
    }

    /// `FrontierDelta::between` names exactly the words where the masks
    /// differ — and patching the old mask at those words rebuilds the
    /// new one, which is the contract `plan_for_delta` leans on.
    #[test]
    fn delta_names_exactly_the_differing_words(
        n in 1usize..6000,
        old_ops in proptest::collection::vec((0u8..3, 0usize..6000), 0..60),
        new_ops in proptest::collection::vec((0u8..3, 0usize..6000), 0..60),
    ) {
        let mut old = FrontierMask::new(n);
        let mut old_dense = vec![false; n];
        for &(op, v) in &old_ops {
            apply(&mut old, &mut old_dense, op, v);
        }
        let mut new = old.clone();
        let mut new_dense = old_dense.clone();
        for &(op, v) in &new_ops {
            apply(&mut new, &mut new_dense, op, v);
        }
        let delta = FrontierDelta::between(&old, &new);
        prop_assert_eq!(delta.is_empty(), old == new);
        prop_assert_eq!(delta.len(), delta.activated.len() + delta.deactivated.len());
        for w in 0..old.num_words() {
            let (o, nw) = (old.word(w), new.word(w));
            prop_assert_eq!(
                delta.activated.contains(&(w as u32)),
                nw & !o != 0,
                "activated word {}", w
            );
            prop_assert_eq!(
                delta.deactivated.contains(&(w as u32)),
                o & !nw != 0,
                "deactivated word {}", w
            );
        }
        // touched_words is the sorted dedup merge...
        let touched = delta.touched_words();
        prop_assert!(touched.windows(2).all(|p| p[0] < p[1]), "ascending, distinct");
        // ...and patching exactly those word spans rebuilds `new`.
        let mut patched = old.clone();
        for &w in &touched {
            let lo = w as usize * WORD_BITS;
            for v in lo..(lo + WORD_BITS).min(n) {
                if new.get(v) {
                    patched.set(v);
                } else {
                    patched.clear(v);
                }
            }
        }
        prop_assert_eq!(&patched, &new);
        prop_assert_eq!(patched.len(), new.len());
    }
}

/// Applies one encoded lane op (0 = set, 1 = clear, 2 = or a lane word
/// into a vertex) to both representations, checking the changed-report
/// against the per-lane reference masks.
fn apply_lanes(lanes: &mut LaneFrontier, masks: &mut [FrontierMask], op: u8, q: usize, v: usize) {
    let (n, k) = (lanes.num_vertices(), lanes.num_lanes());
    if n == 0 {
        return;
    }
    let (q, v) = (q % k, v % n);
    match op % 3 {
        0 => {
            let changed = lanes.set(q, v);
            assert_eq!(changed, !masks[q].get(v), "set({q}, {v}) changed-report");
            masks[q].set(v);
        }
        1 => {
            let changed = lanes.clear(q, v);
            assert_eq!(changed, masks[q].get(v), "clear({q}, {v}) changed-report");
            masks[q].clear(v);
        }
        _ => {
            // A lane word touching every lane at once (the executors'
            // write-back path), derived from q so the stream stays
            // deterministic.
            let word =
                (0x9E37_79B9_7F4A_7C15u64.rotate_left(q as u32 * 7) ^ v as u64) & lane_mask_bits(k);
            lanes.or_lanes(v, word);
            for (lane, mask) in masks.iter_mut().enumerate() {
                if word >> lane & 1 == 1 {
                    mask.set(v);
                }
            }
        }
    }
}

/// The all-lanes bitmask for `k` lanes.
fn lane_mask_bits(k: usize) -> u64 {
    if k == MAX_LANES {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A [`LaneFrontier`] under any interleaving of per-lane set/clear
    /// and word-wide or ops is observationally identical to K
    /// independent [`FrontierMask`]s mutated the same way: per-lane
    /// bits, O(1) per-lane popcounts, the collapsed union mask, lane
    /// materialization, and per-lane deltas between two states.
    #[test]
    fn lane_frontier_tracks_k_independent_masks(
        n in 1usize..500,
        k in 1usize..=MAX_LANES,
        ops in proptest::collection::vec((0u8..3, 0usize..64, 0usize..500), 0..120),
        more in proptest::collection::vec((0u8..3, 0usize..64, 0usize..500), 0..60),
    ) {
        let mut lanes = LaneFrontier::new(n, k);
        let mut masks = vec![FrontierMask::new(n); k];
        for &(op, q, v) in &ops {
            apply_lanes(&mut lanes, &mut masks, op, q, v);
        }
        // Per-vertex lane words and per-lane observations.
        for v in 0..n {
            let expected = masks
                .iter()
                .enumerate()
                .fold(0u64, |acc, (q, m)| acc | u64::from(m.get(v)) << q);
            prop_assert_eq!(lanes.vertex_lanes(v), expected, "vertex {}", v);
            for (q, mask) in masks.iter().enumerate() {
                prop_assert_eq!(lanes.get(q, v), mask.get(v));
            }
        }
        for (q, mask) in masks.iter().enumerate() {
            prop_assert_eq!(lanes.lane_len(q), mask.len() as u64, "lane {} popcount", q);
            prop_assert_eq!(lanes.lane_is_empty(q), mask.is_empty());
            prop_assert_eq!(&lanes.lane(q), mask, "lane {} materialization", q);
        }
        // The union collapses to the OR of the lanes — the mask the
        // pruning/planner/disk/cluster machinery consumes unchanged.
        let mut union = FrontierMask::new(n);
        for mask in &masks {
            for v in mask.iter() {
                union.set(v);
            }
        }
        prop_assert_eq!(lanes.union(), &union);
        prop_assert_eq!(lanes.is_empty(), union.is_empty());
        // Reconstructing from the reference masks is the same frontier.
        let rebuilt = LaneFrontier::from_masks(&masks);
        for v in 0..n {
            prop_assert_eq!(rebuilt.vertex_lanes(v), lanes.vertex_lanes(v));
        }
        // Per-lane deltas between two states agree with the deltas of
        // the independent masks (what a fused driver hands the planner).
        let mut next = {
            let mut copy = LaneFrontier::new(n, k);
            for v in 0..n {
                copy.or_lanes(v, lanes.vertex_lanes(v));
            }
            copy
        };
        let mut next_masks = masks.clone();
        for &(op, q, v) in &more {
            apply_lanes(&mut next, &mut next_masks, op, q, v);
        }
        for q in 0..k {
            let lane_delta = FrontierDelta::between(&lanes.lane(q), &next.lane(q));
            let mask_delta = FrontierDelta::between(&masks[q], &next_masks[q]);
            prop_assert_eq!(lane_delta.activated, mask_delta.activated, "lane {}", q);
            prop_assert_eq!(lane_delta.deactivated, mask_delta.deactivated, "lane {}", q);
        }
    }
}

/// `LaneFrontier::full` agrees with K full masks at lane-word and
/// mask-word boundaries, where off-by-ones live.
#[test]
fn full_lane_frontier_covers_boundaries() {
    for n in [1, 63, 64, 65, 128] {
        for k in [1, 2, 63, 64] {
            let lanes = LaneFrontier::full(n, k);
            assert_eq!(lanes.union(), &FrontierMask::full(n), "full({n}, {k})");
            for q in 0..k {
                assert_eq!(lanes.lane_len(q), n as u64);
                assert_eq!(lanes.lane(q), FrontierMask::full(n));
            }
        }
    }
}

/// `full` and `from_slice` agree with the trivially-dense references at
/// word-boundary sizes, where off-by-ones live.
#[test]
fn constructors_cover_word_boundaries() {
    for n in [0, 1, 63, 64, 65, 127, 128, 4095, 4096, 4097] {
        let full = FrontierMask::full(n);
        assert_eq!(full.to_vec(), vec![true; n], "full({n})");
        assert_eq!(full.len(), n);
        assert_eq!(FrontierMask::from_slice(&vec![true; n]), full);
        assert_eq!(FrontierMask::new(n).to_vec(), vec![false; n]);
        assert!(FrontierDelta::between(&full, &full).is_empty());
        if n > 0 {
            let empty = FrontierMask::new(n);
            let delta = FrontierDelta::between(&empty, &full);
            assert_eq!(delta.activated.len(), full.num_words());
            assert!(delta.deactivated.is_empty());
        }
    }
}
