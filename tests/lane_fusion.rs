//! Property tests pinning fused multi-source traversals to their
//! executable specification: **K independent single-query runs**. A
//! fused run packs K queries as frontier lanes
//! ([`LaneFrontier`](graphr_repro::core::exec::LaneFrontier)), plans the
//! union frontier each iteration, and advances every lane with one scan
//! of the planned edge stream — so for every lane, over random graphs ×
//! random source sets × serial/parallel/cluster engines:
//!
//! * the per-query results (distances / labels) must be bit-identical
//!   to the independent run's, and
//! * the per-query attribution row
//!   ([`Metrics::lanes`](graphr_repro::core::Metrics)) — iterations,
//!   frontier totals and peak, settled vertices — must equal the row the
//!   independent run reports for itself.
//!
//! A single-lane wave is pinned harder still: K=1 fused is the unfused
//! run, full machine [`Metrics`](graphr_repro::core::Metrics) included.

use graphr_repro::core::exec::{ScanEngine, StreamingExecutor};
use graphr_repro::core::multinode::{ClusterExecutor, MultiNodeConfig};
use graphr_repro::core::sim::{
    run_bfs_lanes_with, run_bfs_with, run_sssp_lanes_with, run_sssp_with, run_wcc_lanes_with,
    run_wcc_with, symmetrised, LaneTraversalOptions, TraversalOptions,
};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::EdgeList;
use graphr_repro::runtime::ParallelExecutor;
use graphr_repro::units::FixedSpec;
use proptest::prelude::*;

/// A small geometry so tiny random graphs still tile into several
/// strips (exercising real union plans, not single-unit degenerates).
fn small_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .unwrap()
}

/// One engine of each determinism-contract flavour over the same
/// preprocessing: 0 = serial reference, 1 = strip-sharded parallel,
/// 2 = three-node cluster of serial nodes.
fn make_engine<'a>(
    kind: usize,
    tiled: &'a TiledGraph,
    config: &'a GraphRConfig,
    spec: FixedSpec,
) -> Box<dyn ScanEngine + 'a> {
    match kind {
        0 => Box::new(StreamingExecutor::new(tiled, config, spec)),
        1 => Box::new(ParallelExecutor::with_threads(tiled, config, spec, 3)),
        _ => Box::new(ClusterExecutor::new(
            tiled,
            config,
            spec,
            MultiNodeConfig::pcie_cluster(3),
        )),
    }
}

/// Checks one fused traversal against its K independent runs on the
/// same engine kind: per-lane distances and attribution rows.
fn assert_lanes_match_solo(
    graph: &EdgeList,
    tiled: &TiledGraph,
    config: &GraphRConfig,
    kind: usize,
    sources: &[u32],
    sssp: bool,
) {
    let opts = LaneTraversalOptions::new(sources.to_vec());
    let fused = {
        let mut exec = make_engine(kind, tiled, config, opts.spec);
        if sssp {
            run_sssp_lanes_with(graph, exec.as_mut(), &opts).unwrap()
        } else {
            run_bfs_lanes_with(graph, exec.as_mut(), &opts).unwrap()
        }
    };
    assert_eq!(fused.distances.len(), sources.len());
    assert_eq!(fused.metrics.lanes.len(), sources.len());
    for (q, &source) in sources.iter().enumerate() {
        let solo_opts = TraversalOptions {
            source,
            ..TraversalOptions::default()
        };
        let mut solo_exec = make_engine(kind, tiled, config, solo_opts.spec);
        let solo = if sssp {
            run_sssp_with(graph, solo_exec.as_mut(), &solo_opts).unwrap()
        } else {
            run_bfs_with(graph, solo_exec.as_mut(), &solo_opts).unwrap()
        };
        assert_eq!(
            fused.distances[q], solo.distances,
            "lane {q} (source {source}, engine {kind}) results"
        );
        assert_eq!(
            fused.metrics.lanes[q], solo.metrics.lanes[0],
            "lane {q} (source {source}, engine {kind}) attribution"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused BFS ≡ K independent BFS runs — results and per-lane
    /// attribution — on every engine flavour, for random graphs and
    /// random (possibly duplicated) source sets.
    #[test]
    fn fused_bfs_equals_independent_runs(
        v in 24usize..140,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        raw_sources in proptest::collection::vec(0usize..140, 1..7),
        kind in 0usize..3,
    ) {
        let graph = Rmat::new(v, v * edge_factor).seed(seed).generate();
        let sources: Vec<u32> = raw_sources.iter().map(|&s| (s % v) as u32).collect();
        let config = small_config();
        let tiled = TiledGraph::preprocess(&graph, &config).unwrap();
        assert_lanes_match_solo(&graph, &tiled, &config, kind, &sources, false);
    }

    /// The same specification for SSSP, whose lanes carry real weighted
    /// relaxations (value = edge weight instead of 1).
    #[test]
    fn fused_sssp_equals_independent_runs(
        v in 24usize..140,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        raw_sources in proptest::collection::vec(0usize..140, 1..7),
        kind in 0usize..3,
    ) {
        let graph = Rmat::new(v, v * edge_factor).seed(seed).generate();
        let sources: Vec<u32> = raw_sources.iter().map(|&s| (s % v) as u32).collect();
        let config = small_config();
        let tiled = TiledGraph::preprocess(&graph, &config).unwrap();
        assert_lanes_match_solo(&graph, &tiled, &config, kind, &sources, true);
    }

    /// Fused WCC lanes each reproduce the single label-propagation run:
    /// labels, component counts, and attribution rows.
    #[test]
    fn fused_wcc_equals_independent_runs(
        v in 24usize..120,
        edge_factor in 2usize..5,
        seed in 0u64..1000,
        k in 1usize..5,
        kind in 0usize..3,
    ) {
        let graph = Rmat::new(v, v * edge_factor).seed(seed).generate();
        let config = small_config();
        let sym = symmetrised(&graph);
        let tiled = TiledGraph::preprocess(&sym, &config).unwrap();
        let spec = FixedSpec::new(16, 0).unwrap();
        let fused = {
            let mut exec = make_engine(kind, &tiled, &config, spec);
            run_wcc_lanes_with(&graph, exec.as_mut(), k).unwrap()
        };
        let solo = {
            let mut exec = make_engine(kind, &tiled, &config, spec);
            run_wcc_with(&graph, exec.as_mut()).unwrap()
        };
        prop_assert_eq!(fused.labels.len(), k);
        for q in 0..k {
            prop_assert_eq!(&fused.labels[q], &solo.labels, "lane {}", q);
            prop_assert_eq!(fused.num_components[q], solo.num_components);
            prop_assert_eq!(fused.metrics.lanes[q], solo.metrics.lanes[0], "lane {}", q);
        }
    }

    /// K=1 pinned: a single-lane fused run IS the unfused run — full
    /// machine metrics equality, not just results — on every engine.
    #[test]
    fn single_lane_wave_is_the_unfused_run(
        v in 24usize..140,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        raw_source in 0usize..140,
        kind in 0usize..3,
    ) {
        let graph = Rmat::new(v, v * edge_factor).seed(seed).generate();
        let source = (raw_source % v) as u32;
        let config = small_config();
        let tiled = TiledGraph::preprocess(&graph, &config).unwrap();
        let opts = LaneTraversalOptions::new(vec![source]);
        let fused = {
            let mut exec = make_engine(kind, &tiled, &config, opts.spec);
            run_sssp_lanes_with(&graph, exec.as_mut(), &opts).unwrap()
        };
        let solo = {
            let mut exec = make_engine(kind, &tiled, &config, opts.spec);
            run_sssp_with(&graph, exec.as_mut(), &TraversalOptions {
                source,
                ..TraversalOptions::default()
            }).unwrap()
        };
        prop_assert_eq!(&fused.distances[0], &solo.distances);
        prop_assert_eq!(&fused.metrics, &solo.metrics, "K=1 fused must be the unfused run");
    }
}

/// The fused cost model only wins: a multi-source wave on one engine
/// never streams more bytes than the per-query sum, and matches the
/// serial fused accounting bit for bit on the other engine flavours.
#[test]
fn fused_wave_shares_the_stream_across_engines() {
    let graph = Rmat::new(160, 900).seed(11).generate();
    let config = small_config();
    let tiled = TiledGraph::preprocess(&graph, &config).unwrap();
    let opts = LaneTraversalOptions::new(vec![0, 7, 42, 42, 101]);
    let runs: Vec<_> = (0..3)
        .map(|kind| {
            let mut exec = make_engine(kind, &tiled, &config, opts.spec);
            run_bfs_lanes_with(&graph, exec.as_mut(), &opts).unwrap()
        })
        .collect();
    // Serial ≡ parallel bit-identically; the cluster adds only the net
    // exchange on top of identical results and lane attribution.
    assert_eq!(runs[0].distances, runs[1].distances);
    assert_eq!(runs[0].metrics, runs[1].metrics);
    assert_eq!(runs[0].distances, runs[2].distances);
    assert_eq!(runs[0].metrics.lanes, runs[2].metrics.lanes);
    // The union scan streams strictly less than the per-query sum here
    // (the five frontiers overlap heavily on this graph).
    let solo_bytes: u64 = opts
        .sources
        .iter()
        .map(|&source| {
            let mut exec = StreamingExecutor::new(&tiled, &config, opts.spec);
            let solo = run_bfs_with(
                &graph,
                &mut exec,
                &TraversalOptions {
                    source,
                    ..TraversalOptions::default()
                },
            )
            .unwrap();
            solo.metrics.events.bytes_streamed
        })
        .sum();
    assert!(
        runs[0].metrics.events.bytes_streamed < solo_bytes,
        "fused wave must stream less than {solo_bytes} summed bytes, \
         streamed {}",
        runs[0].metrics.events.bytes_streamed
    );
}
