//! Integration tests of the pipelined I/O lane (`ScanDriver`,
//! `--disk nvme-pipe`): cross-iteration prefetch is a *scheduling*
//! change, never a *semantic* one. For any graph and application,
//! results, event counters, and the full disk pricing are bit-identical
//! with prefetch on vs off (`DiskCounters::sans_prefetch`); with
//! prefetch on, the serial engine, the parallel engine, and a one-node
//! cluster still emit byte-identical Chrome traces; and every byte the
//! driver reads ahead was named by the *previous* window's planned
//! stable units — the containment property that keeps speculation
//! honest.

use std::sync::Arc;

use graphr_repro::core::exec::mask::FrontierMask;
use graphr_repro::core::exec::planner::Planner;
use graphr_repro::core::exec::PlanSkeleton;
use graphr_repro::core::metrics::PlanCounters;
use graphr_repro::core::multinode::MultiNodeConfig;
use graphr_repro::core::outofcore::DiskModel;
use graphr_repro::core::sim::{PageRankOptions, TraversalOptions};
use graphr_repro::core::trace::{TraceData, TraceSink};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::grid;
use graphr_repro::graph::GraphHandle;
use graphr_runtime::{ExecMode, Job, JobSpec, Session};
use proptest::prelude::*;

fn test_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

/// The 240×240-grid geometry whose BFS wavefront leaves idle I/O tails
/// wide enough for the driver to actually read ahead (the same
/// workload `micro_runtime` measures); the smaller `test_config`
/// deployments are uniformly disk-bound, so their drivers correctly
/// never speculate.
fn pipelined_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(32)
        .num_ges(4)
        .build()
        .expect("valid pipelined geometry")
}

/// Applications whose windows differ enough to exercise both the hit
/// and the delta path of the driver.
fn specs() -> Vec<JobSpec> {
    vec![
        JobSpec::PageRank(PageRankOptions {
            max_iterations: 5,
            tolerance: 0.0,
            ..PageRankOptions::default()
        }),
        JobSpec::Bfs(TraversalOptions::default()),
        JobSpec::Sssp(TraversalOptions::default()),
        JobSpec::Wcc,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Prefetch on vs off: identical results, identical events,
    /// identical full pricing — only the prefetch-dependent counters
    /// (`demand_time`, `overlapped`, `bytes_prefetched`,
    /// `prefetch_hits`, `prefetch_wasted`) may move, and both runs'
    /// metrics hold every published invariant.
    #[test]
    fn prefetch_changes_nothing_but_the_io_lane(
        n in 8usize..100,
        m in 0usize..400,
        seed in 0u64..8,
    ) {
        let handle = GraphHandle::new(
            "prop",
            Rmat::new(n, m).seed(seed).max_weight(9).generate(),
        );
        for spec in specs() {
            let run = |disk: DiskModel| {
                Session::new(test_config())
                    .with_threads(1)
                    .with_disk(disk)
                    .submit(&Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Serial))
                    .expect("out-of-core run")
            };
            let off = run(DiskModel::nvme());
            let on = run(DiskModel::nvme().with_prefetch());
            prop_assert_eq!(&off.output, &on.output, "{} results", spec.name());
            let (m_off, m_on) = (off.output.metrics(), on.output.metrics());
            prop_assert_eq!(&m_off.events, &m_on.events, "{} events", spec.name());
            prop_assert_eq!(
                m_off.disk.sans_prefetch(),
                m_on.disk.sans_prefetch(),
                "{} full pricing",
                spec.name()
            );
            prop_assert!(m_off.validate().is_ok(), "{}: {:?}", spec.name(), m_off.validate());
            prop_assert!(m_on.validate().is_ok(), "{}: {:?}", spec.name(), m_on.validate());
        }
    }
}

/// The determinism contract wears the prefetch lane: with `nvme-pipe`,
/// the serial engine, the parallel engine, and a one-node cluster emit
/// bit-identical event streams and byte-identical Chrome exports —
/// speculative reads included.
#[test]
fn prefetched_traces_identical_across_modes() {
    let handle = GraphHandle::new("grid-240", grid(240, 240));
    let spec = JobSpec::Bfs(TraversalOptions::default());
    let disk = DiskModel::by_name("nvme-pipe").expect("pipelined model name");
    let run = |mode, threads, nodes: Option<usize>| {
        let sink = TraceSink::shared();
        let mut session = Session::new(pipelined_config())
            .with_threads(threads)
            .with_disk(disk)
            .with_trace(Arc::clone(&sink));
        if let Some(n) = nodes {
            session = session.with_cluster(MultiNodeConfig::pcie_cluster(n));
        }
        session
            .submit(&Job::new(handle.clone(), spec.clone()).with_mode(mode))
            .expect("traced pipelined run");
        sink
    };
    let serial = run(ExecMode::Serial, 1, None);
    let parallel = run(ExecMode::Parallel, 4, None);
    let cluster = run(ExecMode::Serial, 1, Some(1));
    let prefetched: u64 = serial
        .events()
        .iter()
        .filter_map(|e| match &e.data {
            TraceData::Disk(w) => Some(w.bytes_prefetched),
            _ => None,
        })
        .sum();
    assert!(prefetched > 0, "the traced run must actually read ahead");
    assert_eq!(serial.events(), parallel.events());
    assert_eq!(serial.events(), cluster.events());
    assert_eq!(serial.to_chrome_trace(), parallel.to_chrome_trace());
    assert_eq!(serial.to_chrome_trace(), cluster.to_chrome_trace());
}

/// Containment: the driver only ever reads ahead what the previous
/// window's plan named, so per window `bytes_prefetched` is bounded by
/// the *previous* window's (full-pricing) loaded bytes, and the windows
/// sum back to the aggregate counter.
#[test]
fn prefetched_bytes_are_bounded_by_the_previous_plan() {
    let handle = GraphHandle::new("grid-240", grid(240, 240));
    let sink = TraceSink::shared();
    let report = Session::new(pipelined_config())
        .with_threads(1)
        .with_disk(DiskModel::nvme().with_prefetch())
        .with_trace(Arc::clone(&sink))
        .submit(&Job::new(handle, JobSpec::Bfs(TraversalOptions::default())))
        .expect("traced pipelined run");
    let windows: Vec<_> = sink
        .events()
        .iter()
        .filter_map(|e| match &e.data {
            TraceData::Disk(w) => Some(*w),
            _ => None,
        })
        .collect();
    assert!(!windows.is_empty(), "an out-of-core run must emit windows");
    let mut total = 0u64;
    for pair in windows.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        assert!(
            cur.bytes_prefetched <= prev.bytes_loaded,
            "window read ahead {} bytes but the previous plan only named {}",
            cur.bytes_prefetched,
            prev.bytes_loaded
        );
        total += cur.bytes_prefetched;
    }
    assert_eq!(
        windows[0].bytes_prefetched, 0,
        "nothing can be resident before the first plan exists"
    );
    assert!(total > 0, "the run must actually read ahead");
    assert_eq!(
        total,
        report.output.metrics().disk.bytes_prefetched,
        "per-window prefetch must sum to the aggregate counter"
    );
}

/// The export feeding those candidates: after any plan, every planned
/// unit is present in `Planner::stable_units` by Arc identity — the
/// prefetch lane can never name a span the planner did not.
#[test]
fn stable_units_cover_every_planned_unit() {
    let g = grid(60, 60);
    let config = test_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let skeleton = Arc::new(PlanSkeleton::build(&tiled));
    let mut planner = Planner::new(&tiled, Arc::clone(&skeleton));
    let mut counters = PlanCounters::default();
    let n = tiled.num_vertices();
    for band in 0..6usize {
        let mut mask = FrontierMask::new(n);
        for v in (band * 500)..((band * 500 + 700).min(n)) {
            mask.set(v);
        }
        let plan = planner.plan_for(&config, Some(&mask), &mut counters);
        let stable = planner.stable_units();
        assert!(!stable.is_empty(), "band {band}: no stable units exported");
        for unit in plan.units() {
            assert!(
                stable.iter().any(|s| Arc::ptr_eq(s, unit)),
                "band {band}: a planned unit is missing from the stable export"
            );
        }
    }
}
