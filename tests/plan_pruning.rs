//! Property tests of the plan/execute split: a pruned-plan scan must be
//! observationally equivalent — bit-identical frontier, updated mask, and
//! activation count — to the full-plan scan under the same active mask,
//! for random graphs and random masks, while streaming no more (and on
//! sparse frontiers strictly fewer) edges.

use graphr_repro::core::exec::mask::FrontierMask;
use graphr_repro::core::exec::{PlanSkeleton, ScanEngine, StreamingExecutor};
use graphr_repro::core::sim::{run_bfs, TraversalOptions};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::grid;
use graphr_repro::units::FixedSpec;
use proptest::prelude::*;

fn small_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

/// One add-op scan over `tiled` with `mask`, on either the full or the
/// pruned plan; returns (frontier, updated, rows, bytes streamed).
fn add_op_scan(
    tiled: &TiledGraph,
    config: &GraphRConfig,
    mask: &FrontierMask,
    addend: &[f64],
    pruned: bool,
) -> (Vec<f64>, Vec<bool>, u64, u64) {
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let mut exec = StreamingExecutor::new(tiled, config, spec);
    let plan = if pruned {
        exec.plan(Some(mask))
    } else {
        exec.plan(None)
    };
    let mut frontier = addend.to_vec();
    let mut updated = FrontierMask::new(n);
    let rows = exec.scan_add_op_planned(
        &plan,
        &|w, _, _| f64::from(w),
        &|du, w| du + w,
        addend,
        mask,
        &mut frontier,
        &mut updated,
    );
    let metrics = exec.into_metrics();
    (
        frontier,
        updated.to_vec(),
        rows,
        metrics.events.bytes_streamed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any graph and any mask, pruning is invisible in functional
    /// state: frontier, updated mask and activation count are
    /// bit-identical, and the pruned scan never streams more.
    #[test]
    fn pruned_plan_scan_is_bit_identical_to_full_plan_scan(
        n in 1usize..120,
        m in 0usize..500,
        seed in 0u64..20,
        mask_seed in 0u64..64,
        density in 0u32..5,
    ) {
        let g = Rmat::new(n, m).seed(seed).max_weight(9).generate();
        let config = small_config();
        let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
        // Deterministic pseudo-random mask at one of five densities
        // (0 ≈ empty … 4 ≈ full).
        let dense: Vec<bool> = (0..n)
            .map(|v| {
                let h = (v as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(mask_seed)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (h >> 60) < u64::from(density) * 4
            })
            .collect();
        let mask = FrontierMask::from_slice(&dense);
        let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
        let inf = spec.max_value();
        let addend: Vec<f64> = (0..n).map(|v| if dense[v] { v as f64 % 7.0 } else { inf }).collect();

        let (f_full, u_full, r_full, b_full) = add_op_scan(&tiled, &config, &mask, &addend, false);
        let (f_pruned, u_pruned, r_pruned, b_pruned) =
            add_op_scan(&tiled, &config, &mask, &addend, true);

        prop_assert_eq!(f_full, f_pruned, "frontier must be bit-identical");
        prop_assert_eq!(u_full, u_pruned, "updated mask must be bit-identical");
        prop_assert_eq!(r_full, r_pruned, "activation counts must agree");
        prop_assert!(b_pruned <= b_full, "pruning must never stream more");
    }

    /// The planned/pruned split always accounts for every nonempty
    /// subgraph and every edge, whatever the mask.
    #[test]
    fn plan_stats_partition_the_graph(
        n in 1usize..100,
        m in 0usize..400,
        seed in 0u64..20,
        stride in 1usize..13,
    ) {
        let g = Rmat::new(n, m).seed(seed).generate();
        let config = small_config();
        let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
        let skeleton = PlanSkeleton::build(&tiled);
        let dense: Vec<bool> = (0..n).map(|v| v % stride == 0).collect();
        let mask = FrontierMask::from_slice(&dense);
        let plan = skeleton.pruned_plan(&tiled, &mask);
        let stats = plan.stats();
        prop_assert_eq!(
            stats.subgraphs_planned + stats.subgraphs_pruned,
            tiled.nonempty_subgraphs() as u64
        );
        prop_assert_eq!(
            stats.edges_planned + stats.edges_pruned,
            tiled.total_edges() as u64
        );
        prop_assert_eq!(
            stats.units_planned + stats.units_pruned,
            skeleton.num_units()
        );
    }
}

/// A pruned MAC scan is exact when the inputs are zero outside the mask,
/// and its subgraph accounting partitions cleanly: processed + pruned =
/// nonempty, with plan-pruned windows not leaking into the empty-window
/// skip statistics.
#[test]
fn pruned_mac_scan_is_exact_on_masked_inputs() {
    let g = Rmat::new(200, 1200).seed(23).max_weight(7).generate();
    let config = small_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 8).expect("Q8.8 is valid");
    let dense: Vec<bool> = (0..n).map(|v| v % 5 == 0).collect();
    let mask = FrontierMask::from_slice(&dense);
    let x: Vec<f64> = (0..n)
        .map(|v| if dense[v] { (v % 9) as f64 * 0.25 } else { 0.0 })
        .collect();
    let value = |w: f32, _: u32, _: u32| f64::from(w);

    let mut full_exec = StreamingExecutor::new(&tiled, &config, spec);
    let y_full = full_exec.scan_mac(&value, &[&x]);
    let m_full = full_exec.into_metrics();

    let mut pruned_exec = StreamingExecutor::new(&tiled, &config, spec);
    let plan = pruned_exec.plan(Some(&mask));
    let y_pruned = pruned_exec.scan_mac_planned(&plan, &value, &[&x]);
    let m_pruned = pruned_exec.into_metrics();

    assert_eq!(y_full, y_pruned, "zero rows contribute nothing");
    let ev = &m_pruned.events;
    assert!(ev.subgraphs_pruned > 0, "the mask must actually prune");
    assert_eq!(
        ev.subgraphs_processed + ev.subgraphs_pruned,
        tiled.nonempty_subgraphs() as u64,
        "processed and pruned must partition the nonempty subgraphs"
    );
    assert!(
        ev.subgraphs_skipped_empty <= m_full.events.subgraphs_skipped_empty,
        "pruned windows must not double-count as skipped-empty: {} vs full {}",
        ev.subgraphs_skipped_empty,
        m_full.events.subgraphs_skipped_empty
    );
    assert!(m_pruned.events.bytes_streamed < m_full.events.bytes_streamed);
}

/// The acceptance check: on a sparse frontier (single active source in a
/// high-diameter graph) a pruned plan streams strictly fewer edges than
/// the full plan, with identical functional outcome.
#[test]
fn sparse_frontier_streams_strictly_fewer_edges() {
    let g = grid(24, 24);
    let config = small_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
    let n = tiled.num_vertices();
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let inf = spec.max_value();
    let mut mask = FrontierMask::new(n);
    mask.set(0);
    let mut addend = vec![inf; n];
    addend[0] = 0.0;

    let (f_full, u_full, r_full, b_full) = add_op_scan(&tiled, &config, &mask, &addend, false);
    let (f_pruned, u_pruned, r_pruned, b_pruned) =
        add_op_scan(&tiled, &config, &mask, &addend, true);
    assert_eq!(f_full, f_pruned);
    assert_eq!(u_full, u_pruned);
    assert_eq!(r_full, r_pruned);
    assert!(
        b_pruned < b_full,
        "single-source frontier must stream strictly fewer edges: pruned {b_pruned} vs full {b_full}"
    );
    assert!(b_pruned > 0, "the planned subgraphs still stream");
}

/// End-to-end: the BFS driver rebuilds a pruned plan every iteration, so a
/// full run on a high-diameter graph streams far fewer edges than |E| ×
/// iterations — and still matches the gold BFS exactly.
#[test]
fn bfs_driver_iteration_cost_tracks_the_frontier() {
    let g = grid(20, 20);
    let config = small_config();
    let run = run_bfs(&g, &config, &TraversalOptions::default()).expect("bfs runs");
    let gold = graphr_repro::graph::algorithms::bfs::bfs(&g.to_csr(), 0);
    let gold_f: Vec<Option<f64>> = gold.levels.iter().map(|l| l.map(f64::from)).collect();
    assert_eq!(run.distances, gold_f);

    let iters = run.metrics.iterations as u64;
    let total_edges = g.num_edges() as u64;
    let streamed = run.metrics.events.bytes_streamed / graphr_repro::graph::BYTES_PER_EDGE;
    assert!(
        iters > 30,
        "a 20×20 grid BFS needs many rounds, got {iters}"
    );
    assert!(
        streamed < total_edges * iters / 4,
        "pruned plans must stream far less than |E| per round: {streamed} vs {} full-scan edges",
        total_edges * iters
    );
    assert!(run.metrics.events.edges_pruned > 0);
}
