//! Property tests of the plan-aware out-of-core model: an [`IoPlan`]
//! derived from any pruned plan must never load more than the full
//! restream, must load exactly the full restream for the dense plan, and
//! the per-iteration disk accounting must sum back to the legacy
//! aggregate estimate whenever nothing is pruned.
//!
//! [`IoPlan`]: graphr_repro::core::outofcore::IoPlan

use graphr_repro::core::exec::{PlanSkeleton, StreamingExecutor};
use graphr_repro::core::outofcore::{estimate_out_of_core, DiskModel, IoPlan};
use graphr_repro::core::sim::{
    run_pagerank_with, run_sssp_with, PageRankOptions, TraversalOptions,
};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::BYTES_PER_EDGE;
use graphr_runtime::ParallelExecutor;
use proptest::prelude::*;

fn small_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .block_vertices(64)
        .build()
        .expect("valid test geometry")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over any mask, the pruned plan's IoPlan loads no more than the
    /// full restream, partitions its bytes exactly into loaded + skipped,
    /// and covers every on-disk block exactly once (loaded or seeked).
    #[test]
    fn io_plan_bytes_bounded_by_full_restream(
        n in 2usize..160,
        m in 1usize..600,
        seed in 0u64..24,
        mask_seed in 0u64..24,
    ) {
        let g = Rmat::new(n, m).seed(seed).generate();
        let tiled = TiledGraph::preprocess(&g, &small_config()).unwrap();
        let skeleton = PlanSkeleton::build(&tiled);
        let full = IoPlan::full_restream(&tiled);
        prop_assert_eq!(full.bytes_loaded, tiled.total_edges() as u64 * BYTES_PER_EDGE);

        // A splitmix-ish deterministic mask.
        let mut state = mask_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut mask = graphr_repro::core::exec::mask::FrontierMask::new(n);
        for v in 0..n {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            if (state >> 33) & 1 == 1 {
                mask.set(v);
            }
        }
        let io = IoPlan::from_scan_plan(&tiled, &skeleton.pruned_plan(&tiled, &mask));
        prop_assert!(io.bytes_loaded <= full.bytes_loaded);
        prop_assert_eq!(io.bytes_loaded + io.bytes_skipped, full.bytes_loaded);
        prop_assert_eq!(io.blocks_loaded + io.blocks_seeked, tiled.blocks().len());
        // Segments never exceed planned subgraph visits, and a plan with
        // bytes has at least one.
        if io.bytes_loaded > 0 {
            prop_assert!(io.segments >= 1);
        } else {
            prop_assert_eq!(io.segments, 0);
        }
        // Pricing is monotone in what the plan loads.
        let disk = DiskModel::sata_ssd();
        prop_assert!(disk.plan_time(&io) <= disk.plan_time(&full));
    }

    /// The dense plan's IoPlan *is* the full restream.
    #[test]
    fn dense_plan_equals_full_restream(
        n in 2usize..160,
        m in 1usize..600,
        seed in 0u64..24,
    ) {
        let g = Rmat::new(n, m).seed(seed).generate();
        let tiled = TiledGraph::preprocess(&g, &small_config()).unwrap();
        let skeleton = PlanSkeleton::build(&tiled);
        let dense = IoPlan::from_scan_plan(&tiled, &skeleton.full_plan());
        prop_assert_eq!(dense, IoPlan::full_restream(&tiled));
        // An all-active mask prunes nothing, so it matches too.
        let all = IoPlan::from_scan_plan(
            &tiled,
            &skeleton.pruned_plan(&tiled, &graphr_repro::core::exec::mask::FrontierMask::full(n)),
        );
        prop_assert_eq!(all, dense);
    }
}

/// Dense workloads never prune, so the per-iteration accounting must sum
/// back to `estimate_out_of_core`'s aggregate (same bytes, same per-block
/// charges, iteration by iteration).
#[test]
fn unpruned_iterations_sum_to_legacy_aggregate() {
    let g = Rmat::new(300, 2400).seed(17).max_weight(9).generate();
    let config = small_config();
    let tiled = TiledGraph::preprocess(&g, &config).unwrap();
    let disk = DiskModel::sata_ssd();
    let opts = PageRankOptions {
        max_iterations: 7,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let mut exec = StreamingExecutor::new(&tiled, &config, opts.matrix_spec).with_disk(disk);
    let run = run_pagerank_with(&g, &mut exec, &opts).unwrap();
    let m = &run.metrics;
    assert_eq!(m.iterations, 7);
    assert_eq!(m.events.subgraphs_pruned, 0, "PageRank plans are dense");

    let legacy = estimate_out_of_core(&tiled, m, &disk);
    assert_eq!(
        m.disk.bytes_loaded,
        legacy.bytes_per_iteration * m.iterations as u64
    );
    assert_eq!(
        m.disk.blocks_loaded + m.disk.blocks_seeked,
        legacy.blocks as u64 * m.iterations as u64
    );
    // Σ per-iteration time = aggregate (float: iterated sum vs multiply).
    let rel =
        (m.disk.time.as_nanos() - legacy.disk_time.as_nanos()).abs() / legacy.disk_time.as_nanos();
    assert!(
        rel < 1e-9,
        "per-iteration sum drifted from aggregate: {rel}"
    );
    // With identical per-iteration shares, per-iteration overlap equals
    // the aggregate overlap.
    let rel = (m.disk.overlapped.as_nanos() - legacy.overlapped_time.as_nanos()).abs()
        / legacy.overlapped_time.as_nanos();
    assert!(rel < 1e-9, "overlap drifted from aggregate: {rel}");
}

/// Serial and parallel engines must produce bit-identical disk metrics
/// for the same out-of-core traversal (the same contract as compute
/// accounting, extended to the disk side).
#[test]
fn serial_parallel_disk_metrics_bit_identical() {
    let g = Rmat::new(250, 1500).seed(42).max_weight(9).generate();
    let config = small_config();
    let tiled = TiledGraph::preprocess(&g, &config).unwrap();
    let disk = DiskModel::nvme();
    let opts = TraversalOptions::default();

    let mut serial = StreamingExecutor::new(&tiled, &config, opts.spec).with_disk(disk);
    let rs = run_sssp_with(&g, &mut serial, &opts).unwrap();
    for threads in [1, 3, 8] {
        let mut par =
            ParallelExecutor::with_threads(&tiled, &config, opts.spec, threads).with_disk(disk);
        let rp = run_sssp_with(&g, &mut par, &opts).unwrap();
        assert_eq!(rs.distances, rp.distances);
        assert_eq!(
            rs.metrics, rp.metrics,
            "disk metrics must not depend on thread count ({threads} threads)"
        );
        assert!(rp.metrics.disk.is_active());
    }
    // The traversal pruned something, so it must have loaded strictly
    // fewer bytes than restreaming every iteration.
    let full_bytes = tiled.total_edges() as u64 * BYTES_PER_EDGE;
    assert!(rs.metrics.events.edges_pruned > 0);
    assert!(rs.metrics.disk.bytes_loaded < full_bytes * rs.metrics.iterations as u64);
}
