//! Property tests of the incremental planner subsystem: for random
//! frontier sequences, a delta-patched plan must be **bit-identical** —
//! units, `PlanStats`, and the full downstream `Metrics` of executing it
//! — to a plan rebuilt from scratch for the same mask, on the serial,
//! parallel, and cluster engines alike. The planner may only differ in
//! *cost*, reported through `Metrics::plan`.

use std::sync::Arc;

use graphr_repro::core::exec::mask::{FrontierDelta, FrontierMask};
use graphr_repro::core::exec::planner::Planner;
use graphr_repro::core::exec::{PlanSkeleton, ScanEngine, StreamingExecutor};
use graphr_repro::core::metrics::PlanCounters;
use graphr_repro::core::multinode::{ClusterExecutor, MultiNodeConfig, OwnerPolicy};
use graphr_repro::core::{GraphRConfig, Metrics, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::grid;
use graphr_repro::units::FixedSpec;
use graphr_runtime::ParallelExecutor;
use proptest::prelude::*;

fn test_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

/// A deterministic pseudo-random mask sequence that evolves by flipping a
/// bounded number of vertices per step — the overlap profile delta
/// patching exists for, with occasional dense flips mixed in.
fn mask_sequence(n: usize, seed: u64, steps: usize) -> Vec<Vec<bool>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let mut mask = vec![false; n];
    for bit in &mut mask {
        *bit = next() % 4 == 0;
    }
    let mut out = Vec::with_capacity(steps);
    out.push(mask.clone());
    for step in 1..steps {
        if step % 5 == 4 {
            // A dense jump: most chunks flip, exercising the rebuild
            // fallback mid-sequence.
            for bit in &mut mask {
                *bit = next() % 3 == 0;
            }
        } else {
            let flips = (next() as usize % (n / 4 + 1)).max(1);
            for _ in 0..flips {
                let v = next() as usize % n;
                mask[v] = !mask[v];
            }
        }
        out.push(mask.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core contract: over a random frontier sequence, every plan the
    /// stateful planner emits equals the scratch rebuild — units (content
    /// *and* merge order) and `PlanStats` both, via `ScanPlan`'s
    /// `PartialEq` — whether the planner re-scans the mask itself or is
    /// handed the driver-recorded word delta.
    #[test]
    fn delta_patched_plans_equal_scratch_rebuilt_plans(
        n in 8usize..140,
        m in 0usize..600,
        seed in 0u64..24,
        steps in 2usize..10,
    ) {
        let g = Rmat::new(n, m).seed(seed).max_weight(9).generate();
        let config = test_config();
        let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
        let skeleton = Arc::new(PlanSkeleton::build(&tiled));
        let mut by_scan = Planner::new(&tiled, Arc::clone(&skeleton));
        let mut by_delta = Planner::new(&tiled, Arc::clone(&skeleton));
        let mut counters = PlanCounters::default();
        let mut delta_counters = PlanCounters::default();
        let mut prev: Option<FrontierMask> = None;
        for (step, dense) in mask_sequence(n, seed, steps).iter().enumerate() {
            let mask = FrontierMask::from_slice(dense);
            let plan = by_scan.plan_for(&config, Some(&mask), &mut counters);
            let scratch = skeleton.pruned_plan(&tiled, &mask);
            prop_assert_eq!(&*plan, &scratch, "step {} diverged", step);
            // The driver-delta path: a second planner fed exactly the
            // word flips between consecutive masks must stay identical.
            let delta_plan = match &prev {
                Some(p) => {
                    let delta = FrontierDelta::between(p, &mask);
                    by_delta.plan_for_delta(&config, &mask, &delta, &mut delta_counters)
                }
                None => by_delta.plan_for(&config, Some(&mask), &mut delta_counters),
            };
            prop_assert_eq!(&*delta_plan, &scratch, "delta step {} diverged", step);
            prev = Some(mask);
        }
        prop_assert_eq!(
            counters.full_rebuilds + counters.delta_patches,
            steps as u64,
            "every masked request must be accounted as rebuild or patch"
        );
        prop_assert_eq!(
            delta_counters.full_rebuilds + delta_counters.delta_patches,
            steps as u64
        );
    }

    /// End-to-end determinism: a full SSSP run whose iterations plan
    /// through the engine (delta patching under the hood) produces
    /// bit-identical distances, per-round activations and Metrics to the
    /// same loop fed scratch-rebuilt plans — on serial, parallel, and
    /// cluster engines.
    #[test]
    fn engine_runs_match_scratch_planned_runs(
        n in 8usize..100,
        m in 0usize..450,
        seed in 0u64..16,
        nodes in 2usize..5,
    ) {
        let g = Rmat::new(n, m).seed(seed).max_weight(9).generate();
        let config = test_config();
        let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
        let skeleton = Arc::new(PlanSkeleton::build(&tiled));
        let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");

        let scratch = scratch_planned_sssp(&tiled, &config, &skeleton, spec);
        let mut serial = StreamingExecutor::new(&tiled, &config, spec);
        let mut parallel = ParallelExecutor::with_threads(&tiled, &config, spec, 4);
        let mut cluster = ClusterExecutor::new(
            &tiled,
            &config,
            spec,
            MultiNodeConfig::pcie_cluster(nodes).with_owner(OwnerPolicy::DegreeWeighted),
        );
        let mut serial_d = StreamingExecutor::new(&tiled, &config, spec);
        let mut parallel_d = ParallelExecutor::with_threads(&tiled, &config, spec, 4);
        let mut cluster_d = ClusterExecutor::new(
            &tiled,
            &config,
            spec,
            MultiNodeConfig::pcie_cluster(nodes).with_owner(OwnerPolicy::DegreeWeighted),
        );
        let engines: [(&str, &mut dyn ScanEngine, bool); 6] = [
            ("serial", &mut serial, false),
            ("parallel", &mut parallel, false),
            ("cluster", &mut cluster, false),
            ("serial+delta", &mut serial_d, true),
            ("parallel+delta", &mut parallel_d, true),
            ("cluster+delta", &mut cluster_d, true),
        ];
        for (name, exec, driver_delta) in engines {
            let (dist, rows, metrics) = engine_planned_sssp(exec, spec, n, driver_delta);
            prop_assert_eq!(&dist, &scratch.0, "{} distances diverged", name);
            prop_assert_eq!(&rows, &scratch.1, "{} activations diverged", name);
            if name.starts_with("serial") {
                // Downstream Metrics must match bit for bit once the
                // planner's own cost counters are set aside (the two
                // loops planned differently on purpose).
                let mut a = metrics.clone();
                let mut b = scratch.2.clone();
                a.plan = PlanCounters::default();
                b.plan = PlanCounters::default();
                prop_assert_eq!(a, b, "serial Metrics diverged");
            } else {
                // Parallel merges in plan order; the cluster additionally
                // composes elapsed/net — events stay exactly the scan's.
                prop_assert_eq!(metrics.events, scratch.2.events, "{} events diverged", name);
                prop_assert_eq!(metrics.iterations, scratch.2.iterations);
            }
        }
    }
}

type SsspTrace = (Vec<f64>, Vec<u64>, Metrics);

/// The SSSP loop with every iteration's plan rebuilt from scratch through
/// the stateless skeleton — the pre-planner baseline.
fn scratch_planned_sssp(
    tiled: &TiledGraph,
    config: &GraphRConfig,
    skeleton: &PlanSkeleton,
    spec: FixedSpec,
) -> SsspTrace {
    let mut exec = StreamingExecutor::new(tiled, config, spec);
    let n = tiled.num_vertices();
    let inf = spec.max_value();
    let mut dist = vec![inf; n];
    dist[0] = 0.0;
    let mut active = FrontierMask::new(n);
    active.set(0);
    let mut rows_history = Vec::new();
    for _ in 0..n {
        let plan = skeleton.pruned_plan(tiled, &active);
        let mut frontier = dist.clone();
        let mut updated = FrontierMask::new(n);
        rows_history.push(exec.scan_add_op_planned(
            &plan,
            &|w, _, _| f64::from(w),
            &|du, w| du + w,
            &dist,
            &active,
            &mut frontier,
            &mut updated,
        ));
        exec.end_iteration();
        dist = frontier;
        active = updated;
        if active.is_empty() {
            break;
        }
    }
    (dist, rows_history, exec.into_metrics())
}

/// The same loop planning through the engine, i.e. the incremental
/// planner — either re-scanning the mask each round (`exec.plan`) or
/// handing over the driver-recorded word delta (`exec.plan_with_delta`),
/// as the `sim` drivers do.
fn engine_planned_sssp(
    exec: &mut dyn ScanEngine,
    spec: FixedSpec,
    n: usize,
    driver_delta: bool,
) -> SsspTrace {
    let inf = spec.max_value();
    let mut dist = vec![inf; n];
    dist[0] = 0.0;
    let mut active = FrontierMask::new(n);
    active.set(0);
    let mut rows_history = Vec::new();
    let mut delta: Option<FrontierDelta> = None;
    for _ in 0..n {
        let plan = match &delta {
            Some(d) if driver_delta => exec.plan_with_delta(&active, d),
            _ => exec.plan(Some(&active)),
        };
        let mut frontier = dist.clone();
        let mut updated = FrontierMask::new(n);
        rows_history.push(exec.scan_add_op_planned(
            &plan,
            &|w, _, _| f64::from(w),
            &|du, w| du + w,
            &dist,
            &active,
            &mut frontier,
            &mut updated,
        ));
        exec.end_iteration();
        dist = frontier;
        delta = Some(FrontierDelta::between(&active, &updated));
        active = updated;
        if active.is_empty() {
            break;
        }
    }
    (dist, rows_history, exec.take_metrics())
}

/// On a high-diameter grid BFS the planner must overwhelmingly patch —
/// one rebuild for the first frontier, deltas after — and reuse planned
/// units across rounds, while serial and parallel engines agree on the
/// full Metrics (planning counters included: both planned the same
/// sequence).
#[test]
fn grid_bfs_patches_dominate_and_engines_agree() {
    let g = grid(40, 40);
    let config = test_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let n = tiled.num_vertices();

    let mut serial = StreamingExecutor::new(&tiled, &config, spec);
    let (dist_s, _, m_serial) = engine_planned_sssp(&mut serial, spec, n, true);
    let mut parallel = ParallelExecutor::with_threads(&tiled, &config, spec, 3);
    let (dist_p, _, m_parallel) = engine_planned_sssp(&mut parallel, spec, n, true);

    assert_eq!(dist_s, dist_p);
    assert_eq!(
        m_serial, m_parallel,
        "identical plan sequences must yield identical Metrics, planner counters included"
    );
    assert!(
        m_serial.plan.delta_patches > m_serial.plan.full_rebuilds,
        "overlapping BFS frontiers must mostly patch: {:?}",
        m_serial.plan
    );
    assert!(m_serial.plan.units_reused > 0);
}

/// The cluster re-shards each patched plan by `Arc` clone: a one-node
/// degree-weighted cluster running the engine-planned loop stays
/// bit-identical to the serial engine, planning counters included.
#[test]
fn one_node_cluster_engine_planned_run_is_bit_identical() {
    let g = Rmat::new(180, 1100).seed(7).max_weight(9).generate();
    let config = test_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let n = tiled.num_vertices();

    let mut serial = StreamingExecutor::new(&tiled, &config, spec);
    let single = engine_planned_sssp(&mut serial, spec, n, true);
    let mut cluster = ClusterExecutor::new(
        &tiled,
        &config,
        spec,
        MultiNodeConfig::pcie_cluster(1).with_owner(OwnerPolicy::DegreeWeighted),
    );
    let clustered = engine_planned_sssp(&mut cluster, spec, n, true);
    assert_eq!(single.0, clustered.0);
    assert_eq!(single.1, clustered.1);
    assert_eq!(single.2, clustered.2, "full Metrics must agree");
}
