//! Integration tests of the run telemetry subsystem: attaching a trace
//! sink never changes results or `Metrics` (null-sink identity), the
//! simulated-clock event stream is **bit-identical** across the serial
//! engine, the parallel engine, and a one-node cluster (Chrome-export
//! bytes included), delta-patched and scratch-rebuilt planning differ
//! only in their `Plan` events, and — proptested — the per-iteration
//! deltas sum back to the final aggregate `Metrics` for every app on
//! serial, parallel, and 4-node-cluster execution.

use std::sync::Arc;

use graphr_repro::core::exec::{PlanSkeleton, ScanEngine, StreamingExecutor};
use graphr_repro::core::metrics::EventCounters;
use graphr_repro::core::multinode::MultiNodeConfig;
use graphr_repro::core::outofcore::DiskModel;
use graphr_repro::core::sim::{CfOptions, PageRankOptions, SpmvOptions, TraversalOptions};
use graphr_repro::core::trace::{TraceData, TraceEvent, TraceHandle, TraceSink};
use graphr_repro::core::{GraphRConfig, Metrics, TiledGraph};
use graphr_repro::graph::generators::bipartite::RatingMatrix;
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::grid;
use graphr_repro::graph::GraphHandle;
use graphr_repro::units::FixedSpec;
use graphr_runtime::{ExecMode, Job, JobReport, JobSpec, Session};
use proptest::prelude::*;

fn test_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

fn rmat_handle() -> GraphHandle {
    GraphHandle::new(
        "rmat-250",
        Rmat::new(250, 1500).seed(42).max_weight(9).generate(),
    )
}

fn cf_handle(seed: u64) -> GraphHandle {
    let m = RatingMatrix::new(12, 6, 40).seed(seed).generate();
    GraphHandle::bipartite("ratings", m.graph().clone(), 12, 6)
}

/// The five graph applications (CF rides on a bipartite handle and is
/// exercised separately where needed).
fn graph_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::PageRank(PageRankOptions::default()),
        JobSpec::Spmv(SpmvOptions::default()),
        JobSpec::Bfs(TraversalOptions::default()),
        JobSpec::Sssp(TraversalOptions::default()),
        JobSpec::Wcc,
    ]
}

/// Submits one job on a fresh session wearing a fresh sink; returns the
/// sink and the report.
fn traced_submit(
    handle: &GraphHandle,
    spec: &JobSpec,
    mode: ExecMode,
    threads: usize,
    cluster_nodes: Option<usize>,
) -> (Arc<TraceSink>, JobReport) {
    let sink = TraceSink::shared();
    let mut session = Session::new(test_config())
        .with_threads(threads)
        .with_trace(Arc::clone(&sink));
    if let Some(nodes) = cluster_nodes {
        session = session.with_cluster(MultiNodeConfig::pcie_cluster(nodes));
    }
    let report = session
        .submit(&Job::new(handle.clone(), spec.clone()).with_mode(mode))
        .expect("traced run");
    (sink, report)
}

/// Attaching a sink must be a pure observation: results **and** `Metrics`
/// (`JobOutput`'s `PartialEq` covers both) are bit-identical to the
/// untraced run, for every application.
#[test]
fn tracing_never_changes_results_or_metrics() {
    let handle = rmat_handle();
    let mut specs = graph_specs();
    specs.push(JobSpec::Cf(CfOptions {
        features: 4,
        epochs: 2,
        ..CfOptions::default()
    }));
    for spec in specs {
        let h = if matches!(spec, JobSpec::Cf(_)) {
            cf_handle(5)
        } else {
            handle.clone()
        };
        let plain = Session::new(test_config())
            .submit(&Job::new(h.clone(), spec.clone()))
            .expect("untraced run");
        let (sink, traced) = traced_submit(&h, &spec, ExecMode::Serial, 1, None);
        assert_eq!(
            plain.output,
            traced.output,
            "{}: tracing must not perturb the run",
            spec.name()
        );
        assert!(
            !sink.is_empty(),
            "{}: the sink must see events",
            spec.name()
        );
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e.data, TraceData::Iteration(_))),
            "{}: drivers must emit per-iteration snapshots",
            spec.name()
        );
    }
}

/// Per-job overrides: `Job::untraced` keeps a session-default sink dark,
/// and `Job::with_trace` attaches one to a session without a default.
#[test]
fn per_job_trace_choice_overrides_the_session_default() {
    let handle = rmat_handle();
    let spec = JobSpec::PageRank(PageRankOptions::default());

    let session_sink = TraceSink::shared();
    Session::new(test_config())
        .with_trace(Arc::clone(&session_sink))
        .submit(&Job::new(handle.clone(), spec.clone()).untraced())
        .expect("untraced job");
    assert!(
        session_sink.is_empty(),
        "untraced() must suppress the default sink"
    );

    let job_sink = TraceSink::shared();
    Session::new(test_config())
        .submit(&Job::new(handle, spec).with_trace(Arc::clone(&job_sink)))
        .expect("per-job traced run");
    assert!(
        !job_sink.is_empty(),
        "with_trace() must attach without a session default"
    );
    assert_eq!(job_sink.job_names().len(), 1);
}

/// The determinism contract, extended to telemetry: the simulated-clock
/// event stream — and therefore the exported Chrome trace, byte for byte
/// — is identical across the serial engine, the parallel engine, and a
/// one-node cluster, for every application.
#[test]
fn event_streams_identical_across_serial_parallel_and_one_node_cluster() {
    let handle = rmat_handle();
    for spec in graph_specs() {
        let (serial, _) = traced_submit(&handle, &spec, ExecMode::Serial, 1, None);
        let (parallel, _) = traced_submit(&handle, &spec, ExecMode::Parallel, 4, None);
        let (cluster, _) = traced_submit(&handle, &spec, ExecMode::Serial, 1, Some(1));
        let evs = serial.events();
        assert!(
            evs.iter()
                .any(|e| matches!(e.data, TraceData::Compute { .. })),
            "{}: engines must emit compute spans",
            spec.name()
        );
        // `TraceEvent`'s `PartialEq` ignores host-measured fields, so this
        // is exactly the simulated part of the stream.
        assert_eq!(
            evs,
            parallel.events(),
            "{}: serial and parallel event streams must be bit-identical",
            spec.name()
        );
        assert_eq!(
            evs,
            cluster.events(),
            "{}: a one-node cluster's event stream must be bit-identical",
            spec.name()
        );
        // The Chrome export omits host fields entirely, so the bytes
        // agree too — the `graphr-run --trace` acceptance bar.
        let chrome = serial.to_chrome_trace();
        assert_eq!(chrome, parallel.to_chrome_trace(), "{}", spec.name());
        assert_eq!(chrome, cluster.to_chrome_trace(), "{}", spec.name());
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
    }
}

/// The same contract under a disk model: per-iteration `Disk` windows
/// appear in the stream and the exported bytes still agree across all
/// three execution shapes.
#[test]
fn disk_windows_trace_identically_across_modes() {
    let handle = rmat_handle();
    let spec = JobSpec::Sssp(TraversalOptions::default());
    let run = |mode, threads, nodes: Option<usize>| {
        let sink = TraceSink::shared();
        let mut session = Session::new(test_config())
            .with_threads(threads)
            .with_disk(DiskModel::nvme())
            .with_trace(Arc::clone(&sink));
        if let Some(n) = nodes {
            session = session.with_cluster(MultiNodeConfig::pcie_cluster(n));
        }
        session
            .submit(&Job::new(handle.clone(), spec.clone()).with_mode(mode))
            .expect("traced disk run");
        sink
    };
    let serial = run(ExecMode::Serial, 1, None);
    let parallel = run(ExecMode::Parallel, 4, None);
    let cluster = run(ExecMode::Serial, 1, Some(1));
    assert!(
        serial
            .events()
            .iter()
            .any(|e| matches!(e.data, TraceData::Disk(_))),
        "an out-of-core run must emit disk windows"
    );
    assert_eq!(serial.events(), parallel.events());
    assert_eq!(serial.events(), cluster.events());
    assert_eq!(serial.to_chrome_trace(), parallel.to_chrome_trace());
    assert_eq!(serial.to_chrome_trace(), cluster.to_chrome_trace());
    // JSONL keeps host fields, so only spot-check its shape.
    let jsonl = serial.to_jsonl();
    assert!(jsonl.starts_with("{\"type\":\"job\""));
    assert!(jsonl.contains("\"type\":\"disk\""));
}

/// Delta-patched vs scratch-rebuilt planning: the engine-planned loop's
/// stream equals the scratch-planned loop's stream once the `Plan` events
/// — which report planning *cost*, exactly like `PlanCounters` — are set
/// aside.
#[test]
fn patched_and_scratch_planned_streams_agree_modulo_plan_events() {
    let g = grid(30, 30);
    let config = test_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("grid tiles");
    let skeleton = Arc::new(PlanSkeleton::build(&tiled));
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let n = tiled.num_vertices();

    // A masked SSSP loop; `engine_plans` switches between planning through
    // the engine (delta patching) and the stateless scratch skeleton.
    let run = |engine_plans: bool| {
        let sink = TraceSink::shared();
        let mut exec = StreamingExecutor::new(&tiled, &config, spec);
        exec.set_trace(Some(TraceHandle::new(Arc::clone(&sink))));
        use graphr_repro::core::exec::mask::FrontierMask;
        let inf = spec.max_value();
        let mut dist = vec![inf; n];
        dist[0] = 0.0;
        let mut active = FrontierMask::new(n);
        active.set(0);
        for _ in 0..n {
            let engine_plan = engine_plans.then(|| exec.plan(Some(&active)));
            let scratch_plan;
            let plan = match &engine_plan {
                Some(p) => &**p,
                None => {
                    scratch_plan = skeleton.pruned_plan(&tiled, &active);
                    &scratch_plan
                }
            };
            let mut frontier = dist.clone();
            let mut updated = FrontierMask::new(n);
            exec.scan_add_op_planned(
                plan,
                &|w, _, _| f64::from(w),
                &|du, w| du + w,
                &dist,
                &active,
                &mut frontier,
                &mut updated,
            );
            exec.end_iteration();
            dist = frontier;
            active = updated;
            if active.is_empty() {
                break;
            }
        }
        (dist, exec.take_metrics(), sink.events())
    };

    let (dist_patched, m_patched, evs_patched) = run(true);
    let (dist_scratch, m_scratch, evs_scratch) = run(false);
    assert_eq!(dist_patched, dist_scratch);
    assert!(
        m_patched.plan.delta_patches > 0,
        "the engine-planned loop must actually patch"
    );
    assert!(
        evs_patched
            .iter()
            .any(|e| matches!(e.data, TraceData::Plan { .. })),
        "the engine-planned loop must emit Plan events"
    );
    assert!(
        !evs_scratch
            .iter()
            .any(|e| matches!(e.data, TraceData::Plan { .. })),
        "scratch planning bypasses the engine and emits none"
    );
    assert_eq!(m_patched.events, m_scratch.events);
    let without_plans: Vec<&TraceEvent> = evs_patched
        .iter()
        .filter(|e| !matches!(e.data, TraceData::Plan { .. }))
        .collect();
    let scratch_refs: Vec<&TraceEvent> = evs_scratch.iter().collect();
    assert_eq!(
        without_plans, scratch_refs,
        "modulo Plan events the streams must be bit-identical"
    );
}

/// The fourteen pure-sum `EventCounters` fields in declaration order
/// (`rego_capacity_required` is a running maximum, handled separately).
fn event_fields(e: &EventCounters) -> [u64; 14] {
    [
        e.subgraphs_processed,
        e.subgraphs_skipped_empty,
        e.subgraphs_skipped_inactive,
        e.subgraphs_pruned,
        e.edges_pruned,
        e.tiles_loaded,
        e.edges_loaded,
        e.mvm_scans,
        e.rows_activated,
        e.adc_conversions,
        e.salu_ops,
        e.register_reads,
        e.register_writes,
        e.bytes_streamed,
    ]
}

/// Asserts that the `Iteration` deltas in `events` sum back to the final
/// aggregate: u64 counters exactly (rego capacity via max), simulated
/// `Nanos`/`Joules` to f64 telescoping precision. Host-measured
/// `plan.time` is exempt — `Metrics`' own equality excludes it, so the
/// tail snapshot legitimately may not cover it.
fn assert_deltas_sum_to(events: &[TraceEvent], m: &Metrics, label: &str) {
    let approx = |sum: f64, total: f64, what: &str| {
        let tol = 1e-9 * sum.abs().max(total.abs()).max(1.0);
        assert!(
            (sum - total).abs() <= tol,
            "{label}: {what} deltas sum to {sum}, final metrics say {total}"
        );
    };
    let mut count = 0usize;
    let mut elapsed = 0.0f64;
    let mut times = [0.0f64; 4];
    let mut event_sums = [0u64; 14];
    let mut rego_max = 0u64;
    let mut disk_sums = [0u64; 4];
    let mut disk_times = [0.0f64; 2];
    let mut net_sums = [0u64; 2];
    let mut net_times = [0.0f64; 3];
    let mut plan_sums = [0u64; 4];
    for ev in events {
        let TraceData::Iteration(snap) = &ev.data else {
            continue;
        };
        let (de, time, e, d, nc, p) = (
            &snap.elapsed,
            &snap.time,
            &snap.events,
            &snap.disk,
            &snap.net,
            &snap.plan,
        );
        count += 1;
        elapsed += de.as_nanos();
        for (acc, v) in times
            .iter_mut()
            .zip([time.program, time.compute, time.memory, time.apply])
        {
            *acc += v.as_nanos();
        }
        for (acc, v) in event_sums.iter_mut().zip(event_fields(e)) {
            *acc += v;
        }
        rego_max = rego_max.max(e.rego_capacity_required);
        for (acc, v) in disk_sums.iter_mut().zip([
            d.bytes_loaded,
            d.blocks_loaded,
            d.blocks_seeked,
            d.io_segments,
        ]) {
            *acc += v;
        }
        disk_times[0] += d.time.as_nanos();
        disk_times[1] += d.overlapped.as_nanos();
        for (acc, v) in net_sums.iter_mut().zip([nc.bytes_exchanged, nc.exchanges]) {
            *acc += v;
        }
        net_times[0] += nc.time.as_nanos();
        net_times[1] += nc.overlapped.as_nanos();
        net_times[2] += nc.energy.as_joules();
        for (acc, v) in plan_sums.iter_mut().zip([
            p.full_rebuilds,
            p.delta_patches,
            p.units_reused,
            p.units_patched,
        ]) {
            *acc += v;
        }
    }
    // One snapshot per end_iteration, plus at most one tail for post-loop
    // controller charges.
    assert!(
        count == m.iterations || count == m.iterations + 1,
        "{label}: {count} iteration events for {} iterations",
        m.iterations
    );
    assert_eq!(
        event_sums,
        event_fields(&m.events),
        "{label}: event-counter deltas must sum exactly"
    );
    assert_eq!(
        rego_max, m.events.rego_capacity_required,
        "{label}: rego max"
    );
    assert_eq!(
        disk_sums,
        [
            m.disk.bytes_loaded,
            m.disk.blocks_loaded,
            m.disk.blocks_seeked,
            m.disk.io_segments
        ],
        "{label}: disk-counter deltas must sum exactly"
    );
    assert_eq!(
        net_sums,
        [m.net.bytes_exchanged, m.net.exchanges],
        "{label}: net-counter deltas must sum exactly"
    );
    assert_eq!(
        plan_sums,
        [
            m.plan.full_rebuilds,
            m.plan.delta_patches,
            m.plan.units_reused,
            m.plan.units_patched
        ],
        "{label}: planner-counter deltas must sum exactly"
    );
    approx(elapsed, m.elapsed.as_nanos(), "elapsed");
    approx(
        times[0],
        m.time_breakdown.program.as_nanos(),
        "time.program",
    );
    approx(
        times[1],
        m.time_breakdown.compute.as_nanos(),
        "time.compute",
    );
    approx(times[2], m.time_breakdown.memory.as_nanos(), "time.memory");
    approx(times[3], m.time_breakdown.apply.as_nanos(), "time.apply");
    approx(disk_times[0], m.disk.time.as_nanos(), "disk.time");
    approx(
        disk_times[1],
        m.disk.overlapped.as_nanos(),
        "disk.overlapped",
    );
    approx(net_times[0], m.net.time.as_nanos(), "net.time");
    approx(net_times[1], m.net.overlapped.as_nanos(), "net.overlapped");
    approx(net_times[2], m.net.energy.as_joules(), "net.energy");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 3: for any graph, every application's per-iteration
    /// trace deltas sum back to its final aggregate `Metrics` — on the
    /// serial engine, the parallel engine, and a 4-node cluster.
    #[test]
    fn iteration_deltas_sum_to_final_metrics(
        n in 8usize..80,
        m in 0usize..300,
        seed in 0u64..12,
    ) {
        let handle = GraphHandle::new(
            "prop",
            Rmat::new(n, m).seed(seed).max_weight(9).generate(),
        );
        let mut specs = graph_specs();
        if let Some(JobSpec::PageRank(opts)) = specs.first_mut() {
            *opts = PageRankOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..PageRankOptions::default()
            };
        }
        specs.push(JobSpec::Cf(CfOptions {
            features: 4,
            epochs: 2,
            ..CfOptions::default()
        }));
        for spec in specs {
            let h = if matches!(spec, JobSpec::Cf(_)) {
                cf_handle(seed)
            } else {
                handle.clone()
            };
            let shapes = [
                ("serial", ExecMode::Serial, 1, None),
                ("parallel", ExecMode::Parallel, 4, None),
                ("cluster-4", ExecMode::Serial, 1, Some(4)),
            ];
            for (shape, mode, threads, nodes) in shapes {
                let (sink, report) = traced_submit(&h, &spec, mode, threads, nodes);
                let metrics = report.output.metrics();
                metrics
                    .validate()
                    .unwrap_or_else(|e| panic!("{} {shape}: invalid metrics: {e}", spec.name()));
                assert_deltas_sum_to(
                    &sink.events(),
                    metrics,
                    &format!("{} {shape}", spec.name()),
                );
            }
        }
    }
}

/// The machine-readable `JobReport` serialisation is one balanced JSON
/// object carrying the same aggregate the text report derives from.
#[test]
fn job_report_to_json_is_wellformed() {
    let handle = rmat_handle();
    let report = Session::new(test_config())
        .submit(&Job::new(
            handle,
            JobSpec::Sssp(TraversalOptions::default()),
        ))
        .expect("run");
    let json = report.to_json();
    assert!(json.starts_with("{\"app\":\"sssp\""));
    assert!(json.contains("\"metrics\":{"));
    assert!(json.contains("\"iterations\":"));
    assert!(json.contains("\"subgraphs_planned\":"));
    assert!(json.contains("\"frontier\":{\"mask_words\":"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // The text rendering derives from the same numbers: the planned
    // subgraph count appears in both.
    let text = format!("{report}");
    assert!(
        text.contains("frontier:"),
        "text report must carry the frontier row"
    );
    let planned = json
        .split("\"subgraphs_planned\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .expect("field present");
    assert!(
        text.contains(planned),
        "text report must quote the same planned count ({planned})"
    );
}
