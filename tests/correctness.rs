//! Cross-stack correctness: the gold references, the CPU software
//! substrate, and the GraphR accelerator simulation (in both fidelities)
//! must agree on every evaluated application — the reproduction's central
//! functional claim.

use graphr_repro::core::sim::{
    run_bfs, run_cf, run_pagerank, run_spmv, run_sssp, CfOptions, PageRankOptions, SpmvOptions,
    TraversalOptions,
};
use graphr_repro::core::{Fidelity, GraphRConfig};
use graphr_repro::graph::algorithms::bfs::bfs;
use graphr_repro::graph::algorithms::pagerank::{pagerank, PageRankParams};
use graphr_repro::graph::algorithms::spmv::spmv_vertex_program;
use graphr_repro::graph::algorithms::sssp::{bellman_ford, dijkstra};
use graphr_repro::graph::generators::bipartite::RatingMatrix;
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::EdgeList;
use graphr_repro::gridgraph::engine::{CfSettings, GridEngine, PageRankSettings};

fn test_graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-small",
            Rmat::new(120, 700)
                .seed(11)
                .max_weight(16)
                .self_loops(false)
                .generate(),
        ),
        (
            "rmat-skewed",
            Rmat::new(300, 1500)
                .seed(23)
                .max_weight(32)
                .self_loops(false)
                .generate(),
        ),
        (
            "uniform",
            Rmat::new(200, 900)
                .skew(0.25, 0.25, 0.25)
                .seed(5)
                .max_weight(8)
                .generate(),
        ),
    ]
}

fn config(fidelity: Fidelity) -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(16)
        .num_ges(4)
        .fidelity(fidelity)
        .build()
        .expect("valid test configuration")
}

#[test]
fn bfs_exact_across_all_stacks() {
    for (name, g) in test_graphs() {
        let csr = g.to_csr();
        let gold: Vec<Option<f64>> = bfs(&csr, 0)
            .levels
            .iter()
            .map(|l| l.map(f64::from))
            .collect();
        let sw = GridEngine::new(&g, 4).bfs(0);
        assert_eq!(sw.distances, gold, "gridgraph BFS diverged on {name}");
        for fidelity in [Fidelity::Fast, Fidelity::Analog] {
            let hw =
                run_bfs(&g, &config(fidelity), &TraversalOptions::default()).expect("valid run");
            assert_eq!(
                hw.distances, gold,
                "GraphR {fidelity:?} BFS diverged on {name}"
            );
        }
    }
}

#[test]
fn sssp_exact_across_all_stacks() {
    for (name, g) in test_graphs() {
        let csr = g.to_csr();
        let gold = dijkstra(&csr, 0);
        let also_gold = bellman_ford(&csr, 0);
        assert_eq!(gold.distances, also_gold.distances, "gold oracles disagree");
        let sw = GridEngine::new(&g, 3).sssp(0);
        assert_eq!(
            sw.distances, gold.distances,
            "gridgraph SSSP diverged on {name}"
        );
        for fidelity in [Fidelity::Fast, Fidelity::Analog] {
            let hw =
                run_sssp(&g, &config(fidelity), &TraversalOptions::default()).expect("valid run");
            assert_eq!(
                hw.distances, gold.distances,
                "GraphR {fidelity:?} SSSP diverged on {name}"
            );
        }
    }
}

#[test]
fn pagerank_agrees_within_quantisation() {
    for (name, g) in test_graphs() {
        let gold = pagerank(
            &g.to_csr(),
            &PageRankParams {
                max_iterations: 20,
                tolerance: 0.0,
                ..PageRankParams::default()
            },
        );
        let sw = GridEngine::new(&g, 4).pagerank(&PageRankSettings {
            max_iterations: 20,
            tolerance: 0.0,
            ..PageRankSettings::default()
        });
        for (a, b) in sw.values.iter().zip(&gold.ranks) {
            assert!((a - b).abs() < 1e-12, "gridgraph PR diverged on {name}");
        }
        let hw = run_pagerank(
            &g,
            &config(Fidelity::Fast),
            &PageRankOptions {
                max_iterations: 20,
                tolerance: 0.0,
                ..PageRankOptions::default()
            },
        )
        .expect("valid run");
        // Quantised ranks: mass approximately preserved, per-vertex error
        // bounded by the register resolution (1/64 on n-scaled ranks).
        let mass: f64 = hw.values.iter().sum();
        assert!((mass - 1.0).abs() < 0.05, "mass {mass} drifted on {name}");
        let n = g.num_vertices() as f64;
        for (v, (a, b)) in hw.values.iter().zip(&gold.ranks).enumerate() {
            let err_scaled = (a - b).abs() * n;
            assert!(
                err_scaled < 0.5,
                "vertex {v} scaled error {err_scaled} too large on {name}"
            );
        }
    }
}

#[test]
fn spmv_matches_quantised_gold() {
    for (name, g) in test_graphs() {
        let opts = SpmvOptions::default();
        let hw = run_spmv(&g, &config(Fidelity::Fast), &opts).expect("valid run");
        let gold = spmv_vertex_program(&g.to_csr(), &vec![1.0; g.num_vertices()]);
        let sw = GridEngine::new(&g, 4).spmv(None);
        for ((a, b), c) in hw.values.iter().zip(&gold).zip(&sw.values) {
            assert!((b - c).abs() < 1e-9, "software engines disagree on {name}");
            // Hardware: Q8.8 on matrix values and outputs.
            let tolerance = 0.02 + b.abs() * 0.02;
            assert!(
                (a - b).abs() < tolerance || *b > 127.0,
                "spmv {a} vs {b} on {name}"
            );
        }
    }
}

#[test]
fn cf_reduces_rmse_on_both_engines() {
    let m = RatingMatrix::new(80, 30, 2000).seed(9).generate();
    let sw = GridEngine::new(m.graph(), 4).cf(
        80,
        30,
        &CfSettings {
            features: 8,
            epochs: 6,
            ..CfSettings::default()
        },
    );
    assert!(
        sw.rmse_history.last().unwrap() < &(sw.rmse_history[0] * 0.9),
        "software CF failed to learn: {:?}",
        sw.rmse_history
    );
    let hw = run_cf(
        m.graph(),
        80,
        30,
        &config(Fidelity::Fast),
        &CfOptions {
            features: 8,
            epochs: 6,
            ..CfOptions::default()
        },
    )
    .expect("valid run");
    assert!(
        hw.rmse_history.last().unwrap() < &hw.rmse_history[0],
        "accelerator CF failed to learn: {:?}",
        hw.rmse_history
    );
}

#[test]
fn analog_and_fast_fidelities_agree_end_to_end() {
    let g = Rmat::new(150, 800)
        .seed(3)
        .max_weight(8)
        .self_loops(false)
        .generate();
    let opts = PageRankOptions {
        max_iterations: 10,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let fast = run_pagerank(&g, &config(Fidelity::Fast), &opts).expect("valid run");
    let analog = run_pagerank(&g, &config(Fidelity::Analog), &opts).expect("valid run");
    for (a, b) in fast.values.iter().zip(&analog.values) {
        assert!((a - b).abs() < 1e-12, "fidelities diverged: {a} vs {b}");
    }
    assert_eq!(fast.metrics.events, analog.metrics.events);
    assert_eq!(fast.metrics.elapsed, analog.metrics.elapsed);
    assert_eq!(fast.metrics.energy, analog.metrics.energy);
}

#[test]
fn multigraph_parallel_edges_handled_consistently() {
    // Duplicate edges: MAC algorithms sum them, add-op algorithms keep the
    // cheapest — matching what the gold references compute.
    let mut g = EdgeList::new(4);
    for (s, d, w) in [(0u32, 1u32, 5.0f32), (0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)] {
        g.add_edge(graphr_repro::graph::Edge::new(s, d, w)).unwrap();
    }
    let gold = dijkstra(&g.to_csr(), 0);
    let hw =
        run_sssp(&g, &config(Fidelity::Fast), &TraversalOptions::default()).expect("valid run");
    assert_eq!(hw.distances, gold.distances);
    assert_eq!(hw.distances[1], Some(2.0), "min parallel edge must win");

    let gold_spmv = spmv_vertex_program(&g.to_csr(), &[1.0; 4]);
    let hw_spmv =
        run_spmv(&g, &config(Fidelity::Fast), &SpmvOptions::default()).expect("valid run");
    for (a, b) in hw_spmv.values.iter().zip(&gold_spmv) {
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }
}

#[test]
fn multi_block_out_of_core_execution_is_correct() {
    // Force the out-of-core path: a block size far below the vertex count
    // splits the matrix into a grid of blocks processed in the §3.4
    // column-major disk order. Results must be identical to single-block.
    let g = Rmat::new(700, 4000)
        .seed(31)
        .max_weight(8)
        .self_loops(false)
        .generate();
    let small_node = GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .block_vertices(128) // strip width 16 → 128 is a valid multiple
        .build()
        .expect("valid");
    let tiled = graphr_repro::core::TiledGraph::preprocess(&g, &small_node).expect("tile");
    assert!(tiled.blocks().len() >= 25, "must exercise many blocks");

    // BFS and SSSP stay exact across the block boundary handling.
    let gold = dijkstra(&g.to_csr(), 0);
    let hw = run_sssp(&g, &small_node, &TraversalOptions::default()).expect("run");
    assert_eq!(hw.distances, gold.distances);

    // PageRank matches the same algorithm on a single-block node.
    let single = GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid");
    let opts = PageRankOptions {
        max_iterations: 8,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let multi = run_pagerank(&g, &small_node, &opts).expect("run");
    let one = run_pagerank(&g, &single, &opts).expect("run");
    assert_eq!(multi.values, one.values, "blocking must not change results");
}

#[test]
fn wcc_extension_matches_union_find_across_stacks() {
    use graphr_repro::core::sim::run_wcc;
    use graphr_repro::graph::algorithms::wcc::wcc;
    for (name, g) in test_graphs() {
        let gold = wcc(&g);
        let hw = run_wcc(&g, &config(Fidelity::Fast)).expect("run");
        assert_eq!(hw.labels, gold.labels, "WCC labels diverged on {name}");
        assert_eq!(hw.num_components, gold.num_components);
    }
}
