//! Integration tests of the cluster execution subsystem: sharding a
//! `ScanPlan` across simulated GraphR nodes must be observationally
//! invisible — bit-identical results for any node count, bit-identical
//! *full Metrics* for a one-node cluster — while the plan-aware property
//! exchange never charges more bytes than the legacy dense all-gather.

use graphr_repro::core::multinode::{
    ClusterExecutor, MultiNodeConfig, MultiNodeEstimate, BYTES_PER_PROPERTY,
};
use graphr_repro::core::outofcore::DiskModel;
use graphr_repro::core::sim::{
    run_bfs, run_bfs_with, run_pagerank, run_pagerank_with, run_spmv, run_sssp, run_sssp_with,
    run_wcc, PageRankOptions, SpmvOptions, TraversalOptions,
};
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::grid;
use graphr_repro::graph::GraphHandle;
use graphr_runtime::{ExecMode, Job, JobSpec, Session};
use proptest::prelude::*;

fn test_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

fn rmat_handle() -> GraphHandle {
    GraphHandle::new(
        "rmat-250",
        Rmat::new(250, 1500).seed(42).max_weight(9).generate(),
    )
}

/// Every application, submitted on a one-node cluster and on the plain
/// single-node engine: `JobOutput`'s `PartialEq` covers the functional
/// result *and* the full `Metrics`, so this is the bit-identity contract.
#[test]
fn one_node_cluster_is_bit_identical_for_every_app() {
    let handle = rmat_handle();
    let specs = [
        JobSpec::PageRank(PageRankOptions::default()),
        JobSpec::Spmv(SpmvOptions::default()),
        JobSpec::Bfs(TraversalOptions::default()),
        JobSpec::Sssp(TraversalOptions::default()),
        JobSpec::Wcc,
    ];
    for spec in specs {
        let single = Session::new(test_config())
            .submit(&Job::new(handle.clone(), spec.clone()))
            .expect("single-node run");
        let cluster = Session::new(test_config())
            .with_cluster(MultiNodeConfig::pcie_cluster(1))
            .submit(&Job::new(handle.clone(), spec.clone()))
            .expect("one-node cluster run");
        assert_eq!(
            single.output,
            cluster.output,
            "{}: a one-node cluster must be bit-identical (results + Metrics)",
            spec.name()
        );
        assert!(!cluster.output.metrics().net.is_active());
        cluster
            .output
            .metrics()
            .validate()
            .unwrap_or_else(|e| panic!("{}: inconsistent cluster metrics: {e}", spec.name()));
    }
}

/// The same contract under a disk model: one-node cluster out-of-core
/// accounting is the single-node engine's, bit for bit.
#[test]
fn one_node_cluster_with_disk_is_bit_identical() {
    let handle = rmat_handle();
    let spec = JobSpec::Sssp(TraversalOptions::default());
    let single = Session::new(test_config())
        .with_disk(DiskModel::nvme())
        .submit(&Job::new(handle.clone(), spec.clone()))
        .expect("single-node run");
    let cluster = Session::new(test_config())
        .with_disk(DiskModel::nvme())
        .with_cluster(MultiNodeConfig::pcie_cluster(1))
        .submit(&Job::new(handle, spec))
        .expect("one-node cluster run");
    assert!(single.output.metrics().disk.is_active());
    assert_eq!(single.output, cluster.output);
}

/// Cluster execution across node counts, serial and parallel engines:
/// identical functional results, identical summed event accounting, and
/// an active plan-aware exchange.
#[test]
fn cluster_results_identical_across_node_counts_and_modes() {
    let handle = rmat_handle();
    let single = Session::new(test_config())
        .submit(&Job::new(
            handle.clone(),
            JobSpec::Sssp(TraversalOptions::default()),
        ))
        .expect("single-node run");
    let single_m = single.output.metrics().clone();
    for nodes in [2usize, 3, 4, 7] {
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let report = Session::new(test_config())
                .with_threads(4)
                .with_cluster(MultiNodeConfig::pcie_cluster(nodes))
                .submit(
                    &Job::new(handle.clone(), JobSpec::Sssp(TraversalOptions::default()))
                        .with_mode(mode),
                )
                .expect("cluster run");
            let m = report.output.metrics();
            match (&report.output, &single.output) {
                (
                    graphr_runtime::JobOutput::Traversal(c),
                    graphr_runtime::JobOutput::Traversal(s),
                ) => assert_eq!(c.distances, s.distances, "{nodes} nodes, {mode:?}"),
                other => panic!("unexpected outputs {other:?}"),
            }
            assert_eq!(
                m.events, single_m.events,
                "summed per-node events must equal the single-node scan ({nodes} nodes, {mode:?})"
            );
            assert_eq!(m.iterations, single_m.iterations);
            assert!(m.net.is_active(), "{nodes} nodes must exchange properties");
            m.validate()
                .unwrap_or_else(|e| panic!("inconsistent metrics ({nodes} nodes, {mode:?}): {e}"));
        }
    }
}

/// The acceptance case: a 4-node sparse-frontier BFS on a high-diameter
/// grid. Distances match the single-node run exactly, and the
/// frontier-delta exchange charges strictly fewer bytes than the dense
/// all-gather baseline.
#[test]
fn four_node_sparse_frontier_bfs_beats_the_dense_all_gather() {
    let g = grid(40, 40);
    let cfg = test_config();
    let opts = TraversalOptions::default();
    let single = run_bfs(&g, &cfg, &opts).expect("single-node bfs");
    let tiled = TiledGraph::preprocess(&g, &cfg).expect("grid tiles");
    let mut cluster =
        ClusterExecutor::new(&tiled, &cfg, opts.spec, MultiNodeConfig::pcie_cluster(4));
    let run = run_bfs_with(&g, &mut cluster, &opts).expect("cluster bfs");
    assert_eq!(run.distances, single.distances);

    let dense = MultiNodeEstimate::dense_exchange_bytes(g.num_vertices(), run.metrics.iterations);
    assert!(
        run.metrics.net.bytes_exchanged < dense,
        "frontier-delta exchange must beat the all-gather: {} vs {} bytes",
        run.metrics.net.bytes_exchanged,
        dense
    );
    assert!(run.metrics.net.bytes_exchanged > 0);
    // Exactly the reached non-source vertices' first-touch updates, each
    // exchanged once at 2 bytes (labels only drop once in BFS).
    let reached = run.distances.iter().filter(|d| d.is_some()).count() as u64;
    assert_eq!(
        run.metrics.net.bytes_exchanged,
        (reached - 1) * BYTES_PER_PROPERTY
    );
}

/// Regression (satellite): across the dense MAC and sparse add-op
/// applications alike, the plan-aware exchange never charges more bytes
/// than the legacy dense all-gather — equality for dense PageRank (every
/// destination is touched every iteration), strict win for traversals.
#[test]
fn plan_aware_exchange_is_bounded_by_the_dense_all_gather() {
    let g = Rmat::new(250, 1500).seed(42).max_weight(9).generate();
    let cfg = test_config();
    let tiled = TiledGraph::preprocess(&g, &cfg).expect("valid geometry");
    let cluster_cfg = MultiNodeConfig::pcie_cluster(4);

    // Dense MAC: PageRank touches all |V| destinations every iteration,
    // so the plan-aware exchange equals the all-gather — the bound is
    // tight, never exceeded.
    let pr_opts = PageRankOptions {
        max_iterations: 6,
        tolerance: 0.0,
        ..PageRankOptions::default()
    };
    let mut pr_cluster = ClusterExecutor::new(&tiled, &cfg, pr_opts.matrix_spec, cluster_cfg);
    let pr = run_pagerank_with(&g, &mut pr_cluster, &pr_opts).expect("cluster pagerank");
    let pr_dense = MultiNodeEstimate::dense_exchange_bytes(g.num_vertices(), pr.metrics.iterations);
    assert_eq!(pr.metrics.net.bytes_exchanged, pr_dense);

    // Sparse add-op: SSSP's frontier-delta exchange is strictly below.
    let tr_opts = TraversalOptions::default();
    let mut tr_cluster = ClusterExecutor::new(&tiled, &cfg, tr_opts.spec, cluster_cfg);
    let tr = run_sssp_with(&g, &mut tr_cluster, &tr_opts).expect("cluster sssp");
    let tr_dense = MultiNodeEstimate::dense_exchange_bytes(g.num_vertices(), tr.metrics.iterations);
    assert!(tr.metrics.net.bytes_exchanged < tr_dense);
    assert!(tr.metrics.net.bytes_exchanged > 0);
}

/// Cluster + disk compose: each node loads only its owned planned spans,
/// and the bytes sum exactly to the single-node plan-aware loading.
#[test]
fn cluster_disk_bytes_sum_to_the_single_node_loading() {
    let handle = rmat_handle();
    let spec = JobSpec::Bfs(TraversalOptions::default());
    let single = Session::new(test_config())
        .with_disk(DiskModel::nvme())
        .submit(&Job::new(handle.clone(), spec.clone()))
        .expect("single-node run");
    let cluster = Session::new(test_config())
        .with_disk(DiskModel::nvme())
        .with_cluster(MultiNodeConfig::pcie_cluster(4))
        .submit(&Job::new(handle, spec))
        .expect("cluster run");
    let s = single.output.metrics();
    let c = cluster.output.metrics();
    assert!(c.disk.is_active() && c.net.is_active());
    s.validate().expect("single-node disk metrics consistent");
    c.validate().expect("cluster disk metrics consistent");
    assert_eq!(
        c.disk.bytes_loaded, s.disk.bytes_loaded,
        "per-node loads must partition the planned bytes"
    );
    assert!(
        c.disk.blocks_loaded + c.disk.blocks_seeked >= s.disk.blocks_loaded + s.disk.blocks_seeked,
        "each node walks its own replicated on-disk image"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any graph and any node count, a full SSSP run on the cluster
    /// is functionally bit-identical to the single-node engine, its
    /// summed event accounting matches, and the exchange stays within
    /// the dense all-gather bound.
    #[test]
    fn cluster_sssp_is_bit_identical_for_any_node_count(
        n in 2usize..120,
        m in 0usize..500,
        seed in 0u64..20,
        nodes in 1usize..6,
    ) {
        let g = Rmat::new(n, m).seed(seed).max_weight(9).generate();
        let cfg = test_config();
        let opts = TraversalOptions::default();
        let single = run_sssp(&g, &cfg, &opts).expect("single-node run");
        let tiled = TiledGraph::preprocess(&g, &cfg).expect("valid geometry");
        let mut cluster =
            ClusterExecutor::new(&tiled, &cfg, opts.spec, MultiNodeConfig::pcie_cluster(nodes));
        let run = run_sssp_with(&g, &mut cluster, &opts).expect("cluster run");
        prop_assert_eq!(run.distances, single.distances);
        prop_assert_eq!(run.metrics.events, single.metrics.events);
        prop_assert_eq!(run.metrics.iterations, single.metrics.iterations);
        if nodes == 1 {
            prop_assert_eq!(run.metrics, single.metrics);
        } else {
            let dense = MultiNodeEstimate::dense_exchange_bytes(
                g.num_vertices(),
                run.metrics.iterations,
            );
            prop_assert!(run.metrics.net.bytes_exchanged <= dense);
        }
    }

    /// The MAC pattern under clustering: PageRank values are bit-identical
    /// for any node count, and WCC labels survive partitioning too.
    #[test]
    fn cluster_mac_and_wcc_match_single_node(
        n in 2usize..100,
        m in 0usize..400,
        seed in 0u64..16,
        nodes in 2usize..5,
    ) {
        let g = Rmat::new(n, m).seed(seed).generate();
        let cfg = test_config();
        let opts = PageRankOptions {
            max_iterations: 4,
            tolerance: 0.0,
            ..PageRankOptions::default()
        };
        let single = run_pagerank(&g, &cfg, &opts).expect("single-node run");
        let tiled = TiledGraph::preprocess(&g, &cfg).expect("valid geometry");
        let mut cluster = ClusterExecutor::new(
            &tiled,
            &cfg,
            opts.matrix_spec,
            MultiNodeConfig::pcie_cluster(nodes),
        );
        let run = run_pagerank_with(&g, &mut cluster, &opts).expect("cluster run");
        prop_assert_eq!(run.values, single.values);

        let wcc_single = run_wcc(&g, &cfg).expect("single-node wcc");
        let wcc_cluster = Session::new(cfg.clone())
            .with_cluster(MultiNodeConfig::pcie_cluster(nodes))
            .submit(&Job::new(
                GraphHandle::new("wcc-prop", g.clone()),
                JobSpec::Wcc,
            ))
            .expect("cluster wcc");
        match wcc_cluster.output {
            graphr_runtime::JobOutput::Wcc(run) => {
                prop_assert_eq!(run.labels, wcc_single.labels);
                prop_assert_eq!(run.num_components, wcc_single.num_components);
            }
            other => prop_assert!(false, "unexpected output {:?}", other),
        }
    }
}

/// A masked SpMV (MAC-side pruning) through the cluster: the pruned plan
/// is sharded like any other, results stay bit-identical to the unmasked
/// single-node pass, and a sparse mask's exchange covers only the planned
/// destination strips — strictly below the dense bound on a graph whose
/// active sources reach few strips.
#[test]
fn masked_spmv_on_a_cluster_matches_unmasked_single_node() {
    let g = grid(20, 20);
    let n = g.num_vertices();
    let cfg = test_config();
    // One active source: its handful of out-edges reach at most a couple
    // of destination strips, so almost everything is pruned.
    let mut mask = graphr_repro::core::exec::mask::FrontierMask::new(n);
    mask.set(0);
    let input: Vec<f64> = (0..n)
        .map(|v| if mask.get(v) { 2.0 } else { 0.0 })
        .collect();
    let unmasked = run_spmv(
        &g,
        &cfg,
        &SpmvOptions {
            input: Some(input.clone()),
            ..SpmvOptions::default()
        },
    )
    .expect("unmasked single-node run");

    let tiled = TiledGraph::preprocess(&g, &cfg).expect("valid geometry");
    let opts = SpmvOptions {
        input: Some(input),
        source_mask: Some(mask),
        ..SpmvOptions::default()
    };
    let mut cluster = ClusterExecutor::new(
        &tiled,
        &cfg,
        opts.matrix_spec,
        MultiNodeConfig::pcie_cluster(3),
    );
    let masked = graphr_repro::core::sim::run_spmv_with(&g, &mut cluster, &opts)
        .expect("masked cluster run");
    assert_eq!(masked.values, unmasked.values);
    assert!(masked.metrics.events.subgraphs_pruned > 0);
    let dense = MultiNodeEstimate::dense_exchange_bytes(n, 1);
    assert!(
        masked.metrics.net.bytes_exchanged < dense,
        "pruned MAC exchange covers only planned destinations: {} vs {}",
        masked.metrics.net.bytes_exchanged,
        dense
    );
    assert!(masked.metrics.net.bytes_exchanged > 0);
}
