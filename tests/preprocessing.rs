//! Integration tests of the §3.4 preprocessing through the public API:
//! the Figure 12 worked geometry, edge-conservation round trips, and the
//! ordering properties the streaming-apply executor relies on.

use graphr_repro::core::preprocess::TileOrder;
use graphr_repro::core::{GraphRConfig, TiledGraph};
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::generators::structured::figure5;
use graphr_repro::units::{BitSlicer, FixedSpec};
use proptest::prelude::*;

/// The Figure 12 node: C=4, N=2, G=2, B=32 with single-slice 4-bit data.
fn figure12_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(2)
        .num_ges(2)
        .spec(FixedSpec::new(5, 0).expect("valid spec"))
        .slicer(BitSlicer::new(4, 1).expect("valid slicer"))
        .block_vertices(32)
        .build()
        .expect("figure-12 geometry is valid")
}

#[test]
fn figure12_worked_example_counts() {
    // 64 vertices → 2×2 blocks; each block: 2 strips × 8 chunks = 16
    // subgraphs of 4×16 positions — exactly the paper's walkthrough.
    let order = TileOrder::new(64, 4, 16, 32).expect("valid geometry");
    assert_eq!(order.num_blocks(), 4);
    assert_eq!(order.subgraphs_per_block(), 16);
    assert_eq!(order.positions_per_subgraph(), 64);
    // Block traversal order B(0,0)→B(1,0)→B(0,1)→B(1,1).
    assert!(order.global_id(0, 0) < order.global_id(32, 0));
    assert!(order.global_id(32, 0) < order.global_id(0, 32));
    assert!(order.global_id(0, 32) < order.global_id(32, 32));
}

#[test]
fn figure5_graph_preprocesses_losslessly() {
    let g = figure5();
    let tiled = TiledGraph::preprocess(&g, &figure12_config()).expect("valid geometry");
    assert_eq!(tiled.total_edges(), 25);
    // Reconstruct every edge from tile coordinates.
    let mut rebuilt = Vec::new();
    for block in tiled.blocks() {
        for strip in &block.strips {
            for sg in &strip.subgraphs {
                let src0 = tiled.subgraph_src_start(block, sg);
                for tile in &sg.tiles {
                    for e in &tile.entries {
                        rebuilt.push((
                            (src0 + e.row as usize) as u32,
                            tiled.tile_dst(block, strip, tile, e.col) as u32,
                        ));
                    }
                }
            }
        }
    }
    rebuilt.sort_unstable();
    let mut expected: Vec<(u32, u32)> = g.iter().map(|e| (e.src, e.dst)).collect();
    expected.sort_unstable();
    assert_eq!(rebuilt, expected);
}

#[test]
fn default_node_tiles_real_sized_graph() {
    let g = Rmat::new(10_000, 80_000).seed(1).generate();
    let config = GraphRConfig::default();
    let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
    assert_eq!(tiled.total_edges(), 80_000);
    assert!(tiled.nonempty_tiles() <= 80_000);
    assert!(tiled.nonempty_subgraphs() <= tiled.total_subgraph_slots());
    // 10 K vertices pad to 3 strips of the 4096-wide window.
    assert_eq!(tiled.order().padded_vertices(), 12288);
}

#[test]
fn ordering_is_disk_sequential() {
    // Walking the tiled structure in executor order must visit edges in
    // nondecreasing global-order-ID — the §3.4 guarantee that block loads
    // are strictly sequential.
    let g = Rmat::new(80, 500).seed(4).generate();
    let config = figure12_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
    let order = *tiled.order();
    let mut last = 0u64;
    for block in tiled.blocks() {
        for strip in &block.strips {
            for sg in &strip.subgraphs {
                let src0 = tiled.subgraph_src_start(block, sg);
                // Per subgraph, take the smallest-ID edge; across the walk
                // those must be nondecreasing.
                let min_id = sg
                    .tiles
                    .iter()
                    .flat_map(|t| {
                        t.entries.iter().map(|e| {
                            order.global_id(
                                src0 + e.row as usize,
                                tiled.tile_dst(block, strip, t, e.col),
                            )
                        })
                    })
                    .min()
                    .expect("nonempty subgraph");
                assert!(min_id >= last, "subgraph order regressed");
                last = min_id;
            }
        }
    }
}

#[test]
fn empty_graph_tiles_and_scans() {
    // No edges at all: the tiler must produce a consistent (all-empty)
    // structure whose strip units still cover the destination axis, and a
    // scan over it must return zeros without charging any subgraph work.
    let g = graphr_repro::graph::EdgeList::new(10);
    let config = figure12_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("empty graph tiles");
    assert_eq!(tiled.total_edges(), 0);
    assert_eq!(tiled.nonempty_subgraphs(), 0);
    let units = graphr_repro::core::exec::strip_units(&tiled);
    assert_eq!(units.iter().map(|u| u.dst_len).sum::<usize>(), 10);
    let mut exec = graphr_repro::core::exec::StreamingExecutor::new(
        &tiled,
        &config,
        FixedSpec::new(16, 8).expect("valid spec"),
    );
    let x = vec![1.0; 10];
    let y = exec.scan_mac(&|w, _, _| f64::from(w), &[&x]);
    assert_eq!(y[0], vec![0.0; 10]);
    assert_eq!(exec.metrics().events.subgraphs_processed, 0);
}

#[test]
fn single_vertex_graph_tiles_and_scans() {
    // One vertex, optionally a self-loop: the smallest possible strip.
    let mut g = graphr_repro::graph::EdgeList::new(1);
    g.add_edge(graphr_repro::graph::Edge::new(0, 0, 3.0))
        .expect("in range");
    let config = figure12_config();
    let tiled = TiledGraph::preprocess(&g, &config).expect("single vertex tiles");
    assert_eq!(tiled.total_edges(), 1);
    assert_eq!(tiled.nonempty_subgraphs(), 1);
    let units = graphr_repro::core::exec::strip_units(&tiled);
    // Only the first unit covers a real vertex; padding units carry none.
    assert_eq!(units[0].dst_len, 1);
    assert!(units[1..].iter().all(|u| u.dst_len == 0));
    let mut exec = graphr_repro::core::exec::StreamingExecutor::new(
        &tiled,
        &config,
        FixedSpec::new(16, 8).expect("valid spec"),
    );
    let y = exec.scan_mac(&|w, _, _| f64::from(w), &[&[2.0][..]]);
    assert_eq!(y[0], vec![6.0]);
}

#[test]
fn non_multiple_strip_width_boundaries_hold() {
    // Vertex counts straddling the strip width (16 here): the final
    // partial strip is exactly where the runtime's sharding boundaries
    // sit, so the scan must stay lossless there.
    let config = figure12_config();
    for n in [15usize, 17, 31, 33, 47] {
        let g = Rmat::new(n, 6 * n).seed(n as u64).max_weight(5).generate();
        let tiled = TiledGraph::preprocess(&g, &config).expect("valid geometry");
        let units = graphr_repro::core::exec::strip_units(&tiled);
        // Units partition [0, n): disjoint, ordered, complete.
        let mut next = 0usize;
        for u in &units {
            if u.dst_len > 0 {
                assert_eq!(u.dst_start, next, "gap before unit at n={n}");
                next = u.dst_start + u.dst_len;
            }
        }
        assert_eq!(next, n, "units must cover all {n} vertices");
        // A MAC scan equals the gold SpMV despite the partial strip.
        let mut exec = graphr_repro::core::exec::StreamingExecutor::new(
            &tiled,
            &config,
            FixedSpec::new(16, 8).expect("valid spec"),
        );
        let x: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let y = exec.scan_mac(&|w, _, _| f64::from(w), &[&x]);
        let gold = graphr_repro::graph::algorithms::spmv::spmv(&g.to_csr(), &x);
        for (a, b) in y[0].iter().zip(&gold) {
            assert!((a - b).abs() < 1e-6, "n={n}: {a} vs {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn preprocessing_conserves_edges(
        n in 1usize..200,
        m in 0usize..600,
        seed in 0u64..25,
    ) {
        let g = Rmat::new(n, m).seed(seed).generate();
        let tiled = TiledGraph::preprocess(&g, &figure12_config()).unwrap();
        let total: usize = tiled
            .blocks()
            .iter()
            .flat_map(|b| &b.strips)
            .flat_map(|s| &s.subgraphs)
            .flat_map(|sg| &sg.tiles)
            .map(|t| t.entries.len())
            .sum();
        prop_assert_eq!(total, m);
    }

    #[test]
    fn padding_never_creates_edges(extra in 1usize..40) {
        // A graph whose vertex count is deliberately not a multiple of
        // anything: padding must not invent or lose edges.
        let n = 32 + extra;
        let g = Rmat::new(n, 100).seed(extra as u64).generate();
        let tiled = TiledGraph::preprocess(&g, &figure12_config()).unwrap();
        prop_assert_eq!(tiled.total_edges(), 100);
        prop_assert!(tiled.order().padded_vertices() >= n);
        prop_assert_eq!(tiled.order().padded_vertices() % 32, 0);
    }
}
