//! Deterministic tests for the `graphr-serve` scheduler: admission
//! control, queue-order fairness, the coalescing rule (only queries that
//! agree on graph, application, options, and execution settings share a
//! fused wave), overflow splitting past
//! [`MAX_LANES`](graphr_repro::core::exec::MAX_LANES), and degenerate
//! query streams (empty drains, duplicated sources).

use graphr_repro::core::exec::MAX_LANES;
use graphr_repro::core::sim::TraversalOptions;
use graphr_repro::core::GraphRConfig;
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::GraphHandle;
use graphr_repro::runtime::{
    AdmissionError, Job, JobOutput, JobSpec, ServeConfig, Server, Session,
};

fn small_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .unwrap()
}

fn bfs(handle: &GraphHandle, source: u32) -> Job {
    Job::new(
        handle.clone(),
        JobSpec::Bfs(TraversalOptions {
            source,
            ..TraversalOptions::default()
        }),
    )
}

fn sssp(handle: &GraphHandle, source: u32) -> Job {
    Job::new(
        handle.clone(),
        JobSpec::Sssp(TraversalOptions {
            source,
            ..TraversalOptions::default()
        }),
    )
}

#[test]
fn draining_an_empty_queue_is_a_no_op() {
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    assert!(server.drain(&session).is_empty());
    assert_eq!(server.stats().solo, 0);
}

#[test]
fn results_come_back_in_submission_order_across_interleaved_waves() {
    // Interleave three incompatible streams; coalescing pulls each
    // stream's members into one wave, but ids must stay FIFO.
    let g1 = GraphHandle::new("g1", Rmat::new(90, 500).seed(1).generate());
    let g2 = GraphHandle::new("g2", Rmat::new(70, 350).seed(2).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    let jobs = [
        bfs(&g1, 0),  // wave A
        sssp(&g1, 1), // wave B (same graph, different app)
        bfs(&g2, 0),  // wave C (different graph)
        bfs(&g1, 5),  // wave A again
        sssp(&g1, 9), // wave B again
        bfs(&g1, 7),  // wave A again
    ];
    for job in &jobs {
        server.enqueue(job.clone()).unwrap();
    }
    let results = server.drain(&session);
    let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "submission order");
    // Stream membership: indices 0, 3, 5 fused as the first wave;
    // 1 and 4 as the second; 2 ran alone as the third.
    let waves: Vec<u64> = results.iter().map(|r| r.wave).collect();
    assert_eq!(waves, vec![0, 1, 2, 0, 1, 0]);
    let lanes: Vec<usize> = results.iter().map(|r| r.lanes).collect();
    assert_eq!(lanes, vec![3, 2, 1, 3, 2, 3]);
    let stats = server.stats();
    assert_eq!((stats.waves, stats.fused, stats.solo), (2, 5, 1));
    // Every fused answer still matches its solo submission.
    for (result, job) in results.iter().zip(&jobs) {
        let solo = session.submit(job).unwrap();
        let fused = result.report.as_ref().unwrap();
        match (&fused.output, &solo.output) {
            (JobOutput::Traversal(f), JobOutput::Traversal(s)) => {
                assert_eq!(f.distances, s.distances, "query {}", result.id);
                assert_eq!(f.metrics.lanes, s.metrics.lanes, "query {}", result.id);
            }
            other => panic!("unexpected outputs {other:?}"),
        }
    }
}

#[test]
fn only_identical_settings_coalesce() {
    let handle = GraphHandle::new("settings", Rmat::new(80, 400).seed(3).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    let other_geometry = GraphRConfig::builder()
        .crossbar_size(8)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .unwrap();
    server.enqueue(bfs(&handle, 0)).unwrap();
    // Same app and graph but a different architectural config: no fuse.
    server
        .enqueue(bfs(&handle, 1).with_config(other_geometry))
        .unwrap();
    // Different iteration cap: no fuse.
    server
        .enqueue(Job::new(
            handle.clone(),
            JobSpec::Bfs(TraversalOptions {
                source: 2,
                max_iterations: Some(2),
                ..TraversalOptions::default()
            }),
        ))
        .unwrap();
    // A dense app never fuses, even queued between compatible queries.
    server
        .enqueue(Job::new(
            handle.clone(),
            JobSpec::PageRank(graphr_repro::core::sim::PageRankOptions::default()),
        ))
        .unwrap();
    // Finally a genuine partner for the head query.
    server.enqueue(bfs(&handle, 3)).unwrap();
    let results = server.drain(&session);
    let lanes: Vec<usize> = results.iter().map(|r| r.lanes).collect();
    assert_eq!(lanes, vec![2, 1, 1, 1, 2], "only queries 0 and 4 fuse");
    assert!(results.iter().all(|r| r.report.is_ok()));
    let stats = server.stats();
    assert_eq!((stats.waves, stats.fused, stats.solo), (1, 2, 3));
}

#[test]
fn oversized_streams_split_into_waves_in_queue_order() {
    let handle = GraphHandle::new("overflow", Rmat::new(150, 800).seed(4).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    let total = MAX_LANES + 6;
    for i in 0..total {
        server.enqueue(bfs(&handle, (i % 150) as u32)).unwrap();
    }
    let results = server.drain(&session);
    assert_eq!(results.len(), total);
    for (i, result) in results.iter().enumerate() {
        let (wave, lanes) = if i < MAX_LANES {
            (0, MAX_LANES)
        } else {
            (1, 6)
        };
        assert_eq!(result.wave, wave, "query {i}");
        assert_eq!(result.lanes, lanes, "query {i}");
        assert!(result.report.is_ok(), "query {i}");
    }
    let stats = server.stats();
    assert_eq!((stats.waves, stats.fused, stats.solo), (2, total as u64, 0));
}

#[test]
fn narrower_lane_budget_is_honoured() {
    let handle = GraphHandle::new("budget", Rmat::new(60, 300).seed(5).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig {
        max_lanes: 2,
        ..ServeConfig::default()
    });
    for source in [0, 1, 2, 3, 4] {
        server.enqueue(bfs(&handle, source)).unwrap();
    }
    let results = server.drain(&session);
    let shape: Vec<(u64, usize)> = results.iter().map(|r| (r.wave, r.lanes)).collect();
    assert_eq!(shape, vec![(0, 2), (0, 2), (1, 2), (1, 2), (2, 1)]);
}

#[test]
fn duplicate_sources_stay_independent_lanes() {
    let handle = GraphHandle::new("dup", Rmat::new(100, 550).seed(6).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig::default());
    for source in [13, 13, 13] {
        server.enqueue(sssp(&handle, source)).unwrap();
    }
    let results = server.drain(&session);
    assert!(results.iter().all(|r| r.lanes == 3));
    let solo = session.submit(&sssp(&handle, 13)).unwrap();
    for result in &results {
        let fused = result.report.as_ref().unwrap();
        match (&fused.output, &solo.output) {
            (JobOutput::Traversal(f), JobOutput::Traversal(s)) => {
                assert_eq!(f.distances, s.distances);
                assert_eq!(f.metrics.lanes, s.metrics.lanes);
            }
            other => panic!("unexpected outputs {other:?}"),
        }
    }
}

#[test]
fn admission_control_rejects_and_recovers() {
    let handle = GraphHandle::new("full", Rmat::new(50, 250).seed(7).generate());
    let session = Session::new(small_config());
    let mut server = Server::new(ServeConfig {
        queue_capacity: 3,
        ..ServeConfig::default()
    });
    for source in [0, 1, 2] {
        server.enqueue(bfs(&handle, source)).unwrap();
    }
    assert_eq!(
        server.enqueue(bfs(&handle, 3)).unwrap_err(),
        AdmissionError::QueueFull { capacity: 3 }
    );
    assert_eq!(server.queued(), 3, "a rejected query is not queued");
    let first = server.drain(&session);
    assert_eq!(first.len(), 3);
    // The drain freed capacity; the retried query gets a fresh id and
    // its own (solo) wave.
    let id = server.enqueue(bfs(&handle, 3)).unwrap();
    assert_eq!(id, 3);
    let second = server.drain(&session);
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].id, 3);
    assert_eq!(second[0].lanes, 1);
    let stats = server.stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.rejected, 1);
}
