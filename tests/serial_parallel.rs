//! Integration tests of the `graphr-runtime` service layer: the parallel
//! executor must be observationally indistinguishable from the serial
//! reference — bit-identical results and identical `Metrics` totals — for
//! every application, and a warm session must skip preprocessing.

use graphr_repro::core::sim::{
    run_bfs, run_cf, run_pagerank, run_spmv, run_sssp, run_wcc, CfOptions, PageRankOptions,
    SpmvOptions, TraversalOptions,
};
use graphr_repro::core::GraphRConfig;
use graphr_repro::graph::generators::bipartite::RatingMatrix;
use graphr_repro::graph::generators::rmat::Rmat;
use graphr_repro::graph::GraphHandle;
use graphr_runtime::{ExecMode, Job, JobOutput, JobSpec, Session};

fn test_config() -> GraphRConfig {
    GraphRConfig::builder()
        .crossbar_size(4)
        .crossbars_per_ge(8)
        .num_ges(2)
        .build()
        .expect("valid test geometry")
}

fn rmat_handle() -> GraphHandle {
    // Weights ≥ 1 so the same graph drives SSSP too.
    GraphHandle::new(
        "rmat-250",
        Rmat::new(250, 1500).seed(42).max_weight(9).generate(),
    )
}

/// Submits the same spec serially and in parallel (4 workers) against
/// fresh sessions and asserts bit-identical outputs (results **and**
/// metrics — `JobOutput`'s `PartialEq` covers both).
fn assert_modes_agree(handle: &GraphHandle, spec: JobSpec) -> JobOutput {
    let serial = Session::new(test_config())
        .with_threads(1)
        .submit(&Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Serial))
        .expect("serial run");
    let parallel = Session::new(test_config())
        .with_threads(4)
        .submit(&Job::new(handle.clone(), spec.clone()).with_mode(ExecMode::Parallel))
        .expect("parallel run");
    assert_eq!(
        serial.output,
        parallel.output,
        "{}: serial and parallel runs must be bit-identical",
        spec.name()
    );
    serial
        .output
        .metrics()
        .validate()
        .unwrap_or_else(|e| panic!("{}: inconsistent serial metrics: {e}", spec.name()));
    parallel
        .output
        .metrics()
        .validate()
        .unwrap_or_else(|e| panic!("{}: inconsistent parallel metrics: {e}", spec.name()));
    parallel.output
}

#[test]
fn pagerank_serial_parallel_identical_with_gold_metrics() {
    let handle = rmat_handle();
    let opts = PageRankOptions::default();
    let output = assert_modes_agree(&handle, JobSpec::PageRank(opts));
    // Also identical to calling the plain sim driver directly.
    let gold = run_pagerank(handle.graph(), &test_config(), &opts).expect("gold run");
    match output {
        JobOutput::Scalar(run) => {
            assert_eq!(run.values, gold.values);
            assert_eq!(run.metrics, gold.metrics);
        }
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn sssp_serial_parallel_identical_with_gold_metrics() {
    let handle = rmat_handle();
    let opts = TraversalOptions::default();
    let output = assert_modes_agree(&handle, JobSpec::Sssp(opts));
    let gold = run_sssp(handle.graph(), &test_config(), &opts).expect("gold run");
    match output {
        JobOutput::Traversal(run) => {
            assert_eq!(run.distances, gold.distances);
            assert_eq!(run.metrics, gold.metrics);
        }
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn spmv_serial_parallel_identical() {
    let handle = rmat_handle();
    let output = assert_modes_agree(&handle, JobSpec::Spmv(SpmvOptions::default()));
    let gold = run_spmv(handle.graph(), &test_config(), &SpmvOptions::default()).expect("gold");
    match output {
        JobOutput::Scalar(run) => assert_eq!(run, gold),
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn bfs_serial_parallel_identical() {
    let handle = rmat_handle();
    let opts = TraversalOptions {
        source: 3,
        ..TraversalOptions::default()
    };
    let output = assert_modes_agree(&handle, JobSpec::Bfs(opts));
    let gold = run_bfs(handle.graph(), &test_config(), &opts).expect("gold");
    match output {
        JobOutput::Traversal(run) => assert_eq!(run, gold),
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn wcc_serial_parallel_identical() {
    let handle = rmat_handle();
    let output = assert_modes_agree(&handle, JobSpec::Wcc);
    let gold = run_wcc(handle.graph(), &test_config()).expect("gold");
    match output {
        JobOutput::Wcc(run) => assert_eq!(run, gold),
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn cf_serial_parallel_identical() {
    let m = RatingMatrix::new(60, 20, 900).seed(5).generate();
    let handle = GraphHandle::bipartite("ratings", m.graph().clone(), 60, 20);
    let opts = CfOptions {
        features: 8,
        epochs: 3,
        ..CfOptions::default()
    };
    let output = assert_modes_agree(&handle, JobSpec::Cf(opts));
    let gold = run_cf(handle.graph(), 60, 20, &test_config(), &opts).expect("gold");
    match output {
        JobOutput::Cf(run) => assert_eq!(run, gold),
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn pruned_plans_are_bit_identical_under_the_parallel_executor() {
    use graphr_repro::core::exec::{ScanEngine, StreamingExecutor};
    use graphr_repro::core::TiledGraph;
    use graphr_repro::units::FixedSpec;
    use graphr_runtime::ParallelExecutor;

    let g = Rmat::new(260, 1600).seed(17).max_weight(9).generate();
    let cfg = test_config();
    let tiled = TiledGraph::preprocess(&g, &cfg).expect("valid geometry");
    let spec = FixedSpec::new(16, 0).expect("Q16.0 is valid");
    let inf = spec.max_value();

    // A full SSSP run where every iteration executes the frontier-pruned
    // plan, on the serial reference and on 1/2/5-thread parallel
    // executors: distances, per-round activations and Metrics must all be
    // bit-identical.
    let run = |exec: &mut dyn ScanEngine| {
        use graphr_repro::core::exec::mask::FrontierMask;
        let n = 260;
        let mut dist = vec![inf; n];
        dist[0] = 0.0;
        let mut active = FrontierMask::new(n);
        active.set(0);
        let mut rows_history = Vec::new();
        for _ in 0..n {
            let plan = exec.plan(Some(&active));
            let mut frontier = dist.clone();
            let mut updated = FrontierMask::new(n);
            rows_history.push(exec.scan_add_op_planned(
                &plan,
                &|w, _, _| f64::from(w),
                &|du, w| du + w,
                &dist,
                &active,
                &mut frontier,
                &mut updated,
            ));
            exec.end_iteration();
            dist = frontier;
            active = updated;
            if active.is_empty() {
                break;
            }
        }
        (dist, rows_history, exec.take_metrics())
    };

    let mut serial = StreamingExecutor::new(&tiled, &cfg, spec);
    let (ds, rs, ms) = run(&mut serial);
    assert!(
        ms.events.subgraphs_pruned > 0,
        "the sparse frontier must actually prune"
    );
    ms.validate()
        .expect("pruned-run metrics must be consistent");
    for threads in [1, 2, 5] {
        let mut par = ParallelExecutor::with_threads(&tiled, &cfg, spec, threads);
        let (dp, rp, mp) = run(&mut par);
        assert_eq!(
            ds, dp,
            "distances must be bit-identical ({threads} threads)"
        );
        assert_eq!(rs, rp, "activations must match ({threads} threads)");
        assert_eq!(ms, mp, "metrics must be identical ({threads} threads)");
    }
}

#[test]
fn warm_session_reuses_preprocessing_across_applications() {
    let session = Session::new(test_config()).with_threads(2);
    let handle = rmat_handle();
    // PageRank tiles the forward graph cold...
    let pr = session
        .submit(&Job::new(
            handle.clone(),
            JobSpec::PageRank(PageRankOptions::default()),
        ))
        .expect("pagerank");
    assert_eq!(pr.cache_hits, 0);
    // ...SSSP reuses the very same tiling (both scan the forward graph)...
    let sssp = session
        .submit(&Job::new(
            handle.clone(),
            JobSpec::Sssp(TraversalOptions::default()),
        ))
        .expect("sssp");
    assert!(sssp.cache_hits > 0, "sssp must reuse the cached tiling");
    // ...and a resubmission is a pure cache hit.
    let again = session
        .submit(&Job::new(
            handle,
            JobSpec::PageRank(PageRankOptions::default()),
        ))
        .expect("pagerank again");
    assert!(again.cache_hits > 0);
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1, "the tiler must have run exactly once");
    assert_eq!(stats.entries, 1);
}

#[test]
fn batch_submission_matches_individual_submission() {
    let handle = rmat_handle();
    let jobs: Vec<Job> = vec![
        Job::new(
            handle.clone(),
            JobSpec::PageRank(PageRankOptions::default()),
        ),
        Job::new(handle.clone(), JobSpec::Sssp(TraversalOptions::default())),
        Job::new(handle.clone(), JobSpec::Spmv(SpmvOptions::default())),
        Job::new(handle.clone(), JobSpec::Bfs(TraversalOptions::default())),
    ];
    let batch_session = Session::new(test_config()).with_threads(4);
    let batch: Vec<JobOutput> = batch_session
        .submit_batch(&jobs)
        .into_iter()
        .map(|r| r.expect("batch job").output)
        .collect();
    let solo_session = Session::new(test_config()).with_threads(4);
    for (job, batch_output) in jobs.iter().zip(&batch) {
        let solo = solo_session.submit(job).expect("solo job");
        assert_eq!(&solo.output, batch_output, "{} diverged", job.spec.name());
    }
}
